//! Shared, immutable frame buffers.

use std::ops::Deref;
use std::sync::Arc;

use arpshield_packet::{EtherType, EthernetEmit, MacAddr, WireEmit};
use arpshield_trace::profile;

use crate::pool::{self, FrameBuf};

/// An immutable, reference-counted frame payload.
///
/// The simulator's hot path is fan-out: a hub repeats every ingress
/// frame to all other ports, a switch floods broadcasts and copies
/// mirror spans, and the trace records every delivery. With `Vec<u8>`
/// payloads each of those copies re-allocated and re-copied the same
/// bytes; a `Frame` makes every copy a reference-count bump sharing one
/// allocation. `Deref<Target = [u8]>` keeps all parsing code unchanged.
///
/// Buffers come from the recycling pool in [`crate::pool`]: dropping
/// the last handle parks the allocation on a thread-local free list
/// and the next construction reuses it, so steady-state traffic
/// allocates nothing per frame. The handle is `Send + Sync`, which is
/// what lets one simulation eventually shard across threads.
///
/// Frames are immutable by construction — mutating a delivered payload
/// would retroactively rewrite trace records and in-flight copies — so
/// devices that transform a frame build a fresh one.
pub struct Frame(Option<Arc<FrameBuf>>);

impl Frame {
    /// The backing buffer. Only [`Drop`] vacates the slot, so every
    /// other method can rely on it being present.
    #[inline]
    fn buf(&self) -> &Arc<FrameBuf> {
        self.0.as_ref().expect("frame buffer only vacated during drop")
    }

    /// Builds a frame by encoding in place into a recycled pool buffer.
    ///
    /// The closure receives a zeroed `len`-byte slice — the TX frame's
    /// final resting place — and returns the byte count it wrote, which
    /// must equal `len` (debug-asserted). With the in-place wire writers
    /// from `arpshield-packet` this is the zero-copy TX path: headers and
    /// payload are serialized straight into the pool allocation, so
    /// steady-state transmission allocates nothing per frame. The
    /// pre-zeroing doubles as Ethernet min-payload padding and guarantees
    /// a recycled buffer never exposes its previous tenant's bytes.
    pub fn build(len: usize, f: impl FnOnce(&mut [u8]) -> usize) -> Frame {
        // Every TX site funnels through here, so this one span covers
        // packet encode/emit for the whole workspace (the nested
        // pool.acquire span separates buffer acquisition from the
        // in-place encoding itself).
        let _s = profile::span("packet.encode");
        Frame(Some(pool::build(len, f)))
    }

    /// Encodes any in-place wire writer into a pooled frame.
    pub fn from_wire<P: WireEmit + ?Sized>(value: &P) -> Frame {
        Frame::build(value.wire_len(), |buf| value.emit(buf))
    }

    /// The payload length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.buf().bytes.len()
    }

    /// True for zero-length payloads.
    pub fn is_empty(&self) -> bool {
        self.buf().bytes.is_empty()
    }

    /// The payload as a byte slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf().bytes
    }

    /// Number of live handles sharing this buffer (diagnostics only).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(self.buf())
    }

    /// How many times this frame's buffer has been recycled through
    /// the pool (diagnostics only).
    pub fn buffer_epoch(&self) -> u64 {
        self.buf().epoch
    }
}

impl Clone for Frame {
    fn clone(&self) -> Frame {
        Frame(self.0.clone())
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        if let Some(arc) = self.0.take() {
            pool::recycle(arc);
        }
    }
}

impl Deref for Frame {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf().bytes
    }
}

impl AsRef<[u8]> for Frame {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Frame {
    fn from(bytes: Vec<u8>) -> Frame {
        Frame(Some(pool::adopt(bytes)))
    }
}

impl From<&[u8]> for Frame {
    fn from(bytes: &[u8]) -> Frame {
        Frame(Some(pool::alloc(bytes)))
    }
}

impl<const N: usize> From<[u8; N]> for Frame {
    fn from(bytes: [u8; N]) -> Frame {
        Frame(Some(pool::alloc(bytes.as_slice())))
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Frame {}

impl PartialEq<[u8]> for Frame {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Frame {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.as_slice() == other[..]
    }
}

/// Builds an Ethernet frame around any in-place payload writer, encoding
/// header, payload, and min-payload padding straight into a recycled pool
/// buffer — the one-liner every TX site uses:
///
/// ```rust
/// use arpshield_netsim::eth_frame;
/// use arpshield_packet::{ArpPacket, EtherType, Ipv4Addr, MacAddr};
///
/// let mac = MacAddr::from_index(1);
/// let arp = ArpPacket::request(mac, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
/// let frame = eth_frame(MacAddr::BROADCAST, mac, EtherType::ARP, &arp);
/// assert_eq!(frame.len(), 60); // 14-byte header + 28-byte ARP + padding
/// ```
pub fn eth_frame<P: WireEmit + ?Sized>(
    dst: MacAddr,
    src: MacAddr,
    ethertype: EtherType,
    payload: &P,
) -> Frame {
    Frame::from_wire(&EthernetEmit::new(dst, src, ethertype, payload))
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pool exists so parallel sharding stays on the table: the
    /// handle must be thread-safe.
    #[test]
    fn frame_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Frame>();
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = Frame::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.handle_count(), 2);
        assert!(std::ptr::eq(a.as_slice(), b.as_slice()));
    }

    #[test]
    fn derefs_like_a_slice() {
        let f = Frame::from(vec![9u8; 60]);
        assert_eq!(f.len(), 60);
        assert!(!f.is_empty());
        assert_eq!(f[0], 9);
        assert_eq!(&f[..3], &[9, 9, 9]);
        assert_eq!(f, vec![9u8; 60]);
        assert_eq!(f, *[9u8; 60].as_slice());
    }

    #[test]
    fn conversions_cover_common_sources() {
        let from_vec = Frame::from(vec![1, 2]);
        let from_slice = Frame::from([1u8, 2].as_slice());
        let from_array = Frame::from([1u8, 2]);
        assert_eq!(from_vec, from_slice);
        assert_eq!(from_vec, from_array);
        assert_eq!(format!("{from_vec:?}"), "Frame(2 bytes)");
    }

    /// Each test runs on its own thread, so the thread-local free list
    /// here is fully deterministic: last-dropped is first-reused.
    #[test]
    fn dropping_the_last_handle_recycles_the_buffer() {
        let first = Frame::from(vec![0xFF; 1500]);
        let ptr = first.as_slice().as_ptr();
        let epoch = first.buffer_epoch();
        drop(first);
        let second = Frame::from(vec![0x01; 64]);
        assert!(std::ptr::eq(ptr, second.as_slice().as_ptr()), "allocation was reused");
        assert_eq!(second.buffer_epoch(), epoch + 1);
    }

    #[test]
    fn recycled_buffers_never_leak_stale_bytes() {
        let poison = Frame::from(vec![0xFF; 1500]);
        drop(poison);
        let fresh = Frame::from(vec![0x01; 64]);
        assert_eq!(fresh.buffer_epoch(), 1, "buffer came from the pool");
        assert_eq!(fresh.len(), 64, "length is the new payload's, not the old capacity");
        assert!(fresh.iter().all(|&b| b == 0x01), "no stale poison bytes visible");
    }

    #[test]
    fn shared_buffers_are_not_recycled_until_the_last_drop() {
        let a = Frame::from(vec![7u8; 128]);
        let b = a.clone();
        drop(a);
        // `b` still owns the buffer: a new frame must not steal it.
        let c = Frame::from(vec![8u8; 16]);
        assert!(!std::ptr::eq(b.as_slice().as_ptr(), c.as_slice().as_ptr()));
        assert_eq!(b, vec![7u8; 128]);
    }
}
