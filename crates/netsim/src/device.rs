//! The device abstraction: anything attached to the simulated segment.

use std::time::Duration;

use crate::frame::Frame;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Identifies a device within one [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

/// Identifies a port on a device. Hosts have a single port `PortId(0)`;
/// switches and hubs have many.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Deferred side effects a device requests during a callback.
#[derive(Debug, Clone)]
pub(crate) enum Action {
    Send { port: PortId, bytes: Frame },
    Schedule { delay: Duration, token: u64 },
}

/// Execution context handed to every [`Device`] callback.
///
/// Devices never touch the simulator directly; they queue transmissions and
/// timers through this context, which the simulator applies after the
/// callback returns. That makes callbacks re-entrancy-free by construction.
#[derive(Debug)]
pub struct DeviceCtx<'a> {
    now: SimTime,
    device: DeviceId,
    actions: &'a mut Vec<Action>,
    rng: &'a mut SimRng,
    incoming: Option<&'a Frame>,
}

impl<'a> DeviceCtx<'a> {
    pub(crate) fn new(
        now: SimTime,
        device: DeviceId,
        actions: &'a mut Vec<Action>,
        rng: &'a mut SimRng,
        incoming: Option<&'a Frame>,
    ) -> Self {
        DeviceCtx { now, device, actions, rng, incoming }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the device being called.
    pub fn device_id(&self) -> DeviceId {
        self.device
    }

    /// Queues a frame for transmission out of `port`. If the port is not
    /// connected the frame is silently dropped (and counted in
    /// [`WireStats`](crate::WireStats)).
    ///
    /// Accepts anything convertible into a [`Frame`]: a freshly encoded
    /// `Vec<u8>`, or a cheap clone of an existing shared buffer
    /// (fan-out devices forward [`incoming_frame`](Self::incoming_frame)
    /// copies without re-allocating).
    pub fn send(&mut self, port: PortId, bytes: impl Into<Frame>) {
        self.actions.push(Action::Send { port, bytes: bytes.into() });
    }

    /// The shared buffer of the frame currently being delivered.
    ///
    /// Inside [`Device::on_frame`] this is the same bytes as the `frame`
    /// argument, but as a clonable [`Frame`] handle: repeating or
    /// flooding it to N ports shares one allocation instead of making N
    /// copies. Outside `on_frame` (start/timer callbacks) it is `None`.
    pub fn incoming_frame(&self) -> Option<Frame> {
        self.incoming.cloned()
    }

    /// Schedules [`Device::on_timer`] with `token` after `delay`.
    pub fn schedule_in(&mut self, delay: Duration, token: u64) {
        self.actions.push(Action::Schedule { delay, token });
    }

    /// Deterministic randomness scoped to the whole simulation.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// A device attached to the simulated network.
///
/// Implementations are event-driven: the simulator invokes [`on_start`]
/// once when the run begins, [`on_frame`] for every delivered frame, and
/// [`on_timer`] for timers the device scheduled. All side effects go
/// through the [`DeviceCtx`].
///
/// [`on_start`]: Device::on_start
/// [`on_frame`]: Device::on_frame
/// [`on_timer`]: Device::on_timer
pub trait Device {
    /// Human-readable name, used in traces and error messages.
    fn name(&self) -> &str;

    /// Number of ports this device exposes. Connecting to a port at or
    /// beyond this count is rejected.
    fn port_count(&self) -> usize;

    /// Called once when the simulation starts (before any frame delivery).
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let _ = ctx;
    }

    /// Called for every frame delivered to one of this device's ports.
    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, port: PortId, frame: &[u8]);

    /// Called when a timer scheduled via [`DeviceCtx::schedule_in`] fires.
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_queues_actions() {
        let mut actions = Vec::new();
        let mut rng = SimRng::new(1);
        let mut ctx =
            DeviceCtx::new(SimTime::from_secs(5), DeviceId(3), &mut actions, &mut rng, None);
        assert_eq!(ctx.now(), SimTime::from_secs(5));
        assert_eq!(ctx.device_id(), DeviceId(3));
        assert!(ctx.incoming_frame().is_none());
        ctx.send(PortId(0), vec![1, 2, 3]);
        ctx.schedule_in(Duration::from_millis(10), 42);
        let _ = ctx.rng().next_u64();
        assert_eq!(actions.len(), 2);
        assert!(
            matches!(&actions[0], Action::Send { port: PortId(0), bytes } if bytes.as_slice() == [1, 2, 3])
        );
        assert!(matches!(&actions[1], Action::Schedule { token: 42, .. }));
    }

    #[test]
    fn incoming_frame_shares_the_delivered_buffer() {
        let mut actions = Vec::new();
        let mut rng = SimRng::new(1);
        let delivered = Frame::from(vec![7u8; 64]);
        let mut ctx =
            DeviceCtx::new(SimTime::ZERO, DeviceId(0), &mut actions, &mut rng, Some(&delivered));
        let shared = ctx.incoming_frame().expect("incoming frame set");
        assert!(std::ptr::eq(shared.as_slice(), delivered.as_slice()));
        ctx.send(PortId(0), shared);
        assert_eq!(delivered.handle_count(), 2, "send queues a shared handle, not a copy");
    }

    #[test]
    fn ids_display() {
        assert_eq!(DeviceId(7).to_string(), "dev7");
        assert_eq!(PortId(2).to_string(), "port2");
    }
}
