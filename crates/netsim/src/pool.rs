//! A recycling arena for frame buffers.
//!
//! Every [`Frame`](crate::Frame) wraps an `Arc<FrameBuf>`. When the
//! last handle drops, the buffer — bytes *and* the `Arc` control block
//! — goes onto a thread-local free list instead of back to the
//! allocator, and the next frame construction pops it, clears the
//! bytes, and copies the new payload in place. At steady state a
//! simulation therefore allocates nothing per frame: the counting
//! global allocator in the `frame_delivery` bench is the regression
//! gate for that claim.
//!
//! The free list is thread-local rather than a global mutex: a frame
//! allocated on one thread and dropped on another simply recycles into
//! the dropper's list (the way size-class caches in modern allocators
//! migrate), so `Frame` stays `Send + Sync` with no cross-thread
//! contention and per-thread determinism for tests.
//!
//! Each recycle bumps the buffer's `epoch`, which diagnostics and the
//! byte-identity property tests use to prove a buffer really was
//! reused — and that reuse never leaks stale bytes into a new frame.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use arpshield_trace::profile;

/// A reference-counted frame payload plus its recycle generation.
#[derive(Debug)]
pub(crate) struct FrameBuf {
    pub(crate) bytes: Vec<u8>,
    /// Incremented every time the buffer is pulled off the free list.
    pub(crate) epoch: u64,
}

/// Free-list bound: beyond this the buffers go back to the allocator.
/// 4096 MTU-sized buffers is ~6 MB per thread, far above any
/// steady-state in-flight high-water mark the simulator produces.
const MAX_FREE: usize = 4096;

thread_local! {
    static FREE: RefCell<Vec<Arc<FrameBuf>>> = const { RefCell::new(Vec::new()) };
    static HITS: Cell<u64> = const { Cell::new(0) };
    static MISSES: Cell<u64> = const { Cell::new(0) };
}

/// This thread's pool effectiveness counters: acquisitions served from
/// the free list (`recycled`) vs fresh allocations (`fresh`). Always
/// on — two thread-local increments per acquisition — and per-thread,
/// matching the free list itself. The profiler samples these into its
/// `pool.*` gauges during scale sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions that reused a recycled buffer.
    pub recycled: u64,
    /// Acquisitions that hit the allocator.
    pub fresh: u64,
}

impl PoolStats {
    /// Recycled fraction of all acquisitions, 0.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.recycled + self.fresh;
        if total == 0 {
            0.0
        } else {
            self.recycled as f64 / total as f64
        }
    }
}

/// Reads this thread's [`PoolStats`] counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        recycled: HITS.try_with(Cell::get).unwrap_or(0),
        fresh: MISSES.try_with(Cell::get).unwrap_or(0),
    }
}

/// Pops a unique recycled buffer, or `None` when the list is empty or
/// unreachable (thread teardown), counting the hit or miss either way.
fn pop_free() -> Option<Arc<FrameBuf>> {
    let popped = FREE.try_with(|free| free.borrow_mut().pop()).ok().flatten();
    let counter = if popped.is_some() { &HITS } else { &MISSES };
    let _ = counter.try_with(|c| c.set(c.get() + 1));
    popped
}

/// Builds a buffer holding a copy of `src`, reusing a recycled buffer
/// (bytes and control block) when one is available.
pub(crate) fn alloc(src: &[u8]) -> Arc<FrameBuf> {
    let _s = profile::span("pool.acquire");
    match pop_free() {
        Some(mut arc) => {
            match Arc::get_mut(&mut arc) {
                Some(buf) => {
                    buf.bytes.clear();
                    buf.bytes.extend_from_slice(src);
                    buf.epoch += 1;
                    arc
                }
                // The free list only holds unique handles, so this arm
                // is unreachable today; allocating fresh keeps it
                // harmless if weak references ever appear.
                None => Arc::new(FrameBuf { bytes: src.to_vec(), epoch: 0 }),
            }
        }
        None => Arc::new(FrameBuf { bytes: src.to_vec(), epoch: 0 }),
    }
}

/// Like [`alloc`], but takes ownership: with no recycled buffer on
/// hand the vector is adopted wholesale instead of copied.
pub(crate) fn adopt(src: Vec<u8>) -> Arc<FrameBuf> {
    let _s = profile::span("pool.acquire");
    match pop_free() {
        Some(mut arc) => match Arc::get_mut(&mut arc) {
            Some(buf) => {
                buf.bytes.clear();
                buf.bytes.extend_from_slice(&src);
                buf.epoch += 1;
                arc
            }
            None => Arc::new(FrameBuf { bytes: src, epoch: 0 }),
        },
        None => Arc::new(FrameBuf { bytes: src, epoch: 0 }),
    }
}

/// Builds a zeroed `len`-byte buffer in place and hands it to `f` to
/// fill, reusing a recycled buffer when one is available. This is the
/// zero-copy TX path: in-place wire writers encode straight into the
/// pool allocation with no intermediate `Vec`. The closure returns the
/// byte count it wrote, which must equal `len` (debug-asserted) — the
/// pre-zeroing both guarantees stale bytes from the previous tenant
/// never show through and provides Ethernet's min-payload padding.
pub(crate) fn build(len: usize, f: impl FnOnce(&mut [u8]) -> usize) -> Arc<FrameBuf> {
    let mut arc = {
        // The acquire span covers only buffer acquisition; the caller's
        // encode closure below is attributed to the caller's own span.
        let _s = profile::span("pool.acquire");
        match pop_free() {
            Some(mut arc) => match Arc::get_mut(&mut arc) {
                Some(buf) => {
                    buf.bytes.clear();
                    buf.bytes.resize(len, 0);
                    buf.epoch += 1;
                    arc
                }
                None => Arc::new(FrameBuf { bytes: vec![0; len], epoch: 0 }),
            },
            None => Arc::new(FrameBuf { bytes: vec![0; len], epoch: 0 }),
        }
    };
    let buf = Arc::get_mut(&mut arc).expect("freshly built buffer has a unique handle");
    let written = f(&mut buf.bytes);
    debug_assert_eq!(written, len, "Frame::build closure must fill the stated length");
    arc
}

/// Returns a buffer to the free list if `arc` is the last handle and
/// the list has room; otherwise the allocation is simply released.
pub(crate) fn recycle(arc: Arc<FrameBuf>) {
    // With one strong handle no other thread can clone it concurrently,
    // so the uniqueness check cannot race; a count above one just means
    // another handle still owns the buffer and this drop is a no-op.
    if Arc::strong_count(&arc) != 1 {
        return;
    }
    let _s = profile::span("pool.recycle");
    let _ = FREE.try_with(|free| {
        let mut free = free.borrow_mut();
        if free.len() < MAX_FREE {
            free.push(arc);
        }
    });
}
