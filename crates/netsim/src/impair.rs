//! Deterministic link impairment: loss, duplication, jitter and flaps.
//!
//! Every impairment decision is a pure function of the simulator's
//! impairment seed, the impaired link direction, and that direction's
//! per-frame counter — never of heap order, thread count, or how many
//! random draws other links consumed. Each decision hashes its own
//! inputs (a SplitMix64-style finalizer) instead of advancing a shared
//! stream, so enabling loss on one link cannot shift the jitter draws
//! of another, and a run stays byte-identical across
//! `ARPSHIELD_THREADS` settings.

use std::time::Duration;

use crate::time::SimTime;

/// Domain-separation salts: one independent draw family per decision.
const SALT_LOSS: u64 = 0x4C4F_5353; // "LOSS"
const SALT_DUP: u64 = 0x4455_5050; // "DUPP"
const SALT_JITTER: u64 = 0x4A49_5454; // "JITT"

/// A periodic link outage schedule: the link is dead (frames silently
/// dropped) for `down_for` out of every `period`, starting at `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSchedule {
    /// When the first outage begins.
    pub offset: Duration,
    /// How long each outage lasts.
    pub down_for: Duration,
    /// Interval between outage starts (must exceed `down_for` for the
    /// link to ever come back).
    pub period: Duration,
}

impl FlapSchedule {
    /// Is the link down at simulated time `at`?
    pub fn is_down(&self, at: SimTime) -> bool {
        let t = at.as_nanos();
        let offset = self.offset.as_nanos() as u64;
        if t < offset || self.period.is_zero() {
            return false;
        }
        let phase = (t - offset) % self.period.as_nanos() as u64;
        phase < self.down_for.as_nanos() as u64
    }
}

/// Per-link impairment profile. The default is a perfect wire, which is
/// also what every link gets when no profile is supplied — existing
/// topologies behave exactly as before this module existed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Probability a frame is silently dropped, per traversal.
    pub loss_prob: f64,
    /// Probability a delivered frame arrives twice.
    pub dup_prob: f64,
    /// Maximum extra delivery delay; each frame draws uniformly from
    /// `[0, jitter)` on top of the link latency.
    pub jitter: Duration,
    /// Optional periodic outage schedule.
    pub flap: Option<FlapSchedule>,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile::PERFECT
    }
}

impl LinkProfile {
    /// A lossless, duplicate-free, jitter-free, always-up wire.
    pub const PERFECT: LinkProfile =
        LinkProfile { loss_prob: 0.0, dup_prob: 0.0, jitter: Duration::ZERO, flap: None };

    /// A profile that only drops frames, with probability `loss_prob`.
    pub fn lossy(loss_prob: f64) -> Self {
        LinkProfile::PERFECT.with_loss(loss_prob)
    }

    /// Sets the per-frame loss probability (clamped to `[0, 1]`).
    pub fn with_loss(mut self, loss_prob: f64) -> Self {
        self.loss_prob = loss_prob.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-frame duplication probability (clamped to `[0, 1]`).
    pub fn with_dup(mut self, dup_prob: f64) -> Self {
        self.dup_prob = dup_prob.clamp(0.0, 1.0);
        self
    }

    /// Sets the jitter bound.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets a periodic outage schedule.
    pub fn with_flap(mut self, flap: FlapSchedule) -> Self {
        self.flap = Some(flap);
        self
    }

    /// True when this profile cannot alter any delivery.
    pub fn is_perfect(&self) -> bool {
        self.loss_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.jitter.is_zero()
            && self.flap.is_none()
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer used as a keyed
/// hash. Unlike a stream RNG, equal inputs always give equal outputs no
/// matter how many other draws happened in between.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` keyed by (seed, link direction, frame
/// index, decision salt).
fn keyed_uniform(seed: u64, link_key: u64, frame_index: u64, salt: u64) -> f64 {
    let h = mix(seed ^ mix(link_key) ^ mix(frame_index.wrapping_mul(0x2545_F491_4F6C_DD1D)) ^ salt);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The fate of one frame traversal, fully determined by its key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Fate {
    /// Frame is silently dropped (loss or link down).
    pub lost: bool,
    /// A second copy is delivered one link latency after the first.
    pub duplicated: bool,
    /// Extra delay added to the link latency.
    pub extra_delay: Duration,
}

/// Decides what happens to the `frame_index`-th frame sent over the link
/// direction identified by `link_key`, at simulated time `at`.
pub(crate) fn fate(
    profile: &LinkProfile,
    seed: u64,
    link_key: u64,
    frame_index: u64,
    at: SimTime,
) -> Fate {
    if let Some(flap) = &profile.flap {
        if flap.is_down(at) {
            return Fate { lost: true, duplicated: false, extra_delay: Duration::ZERO };
        }
    }
    let lost = profile.loss_prob > 0.0
        && keyed_uniform(seed, link_key, frame_index, SALT_LOSS) < profile.loss_prob;
    if lost {
        return Fate { lost: true, duplicated: false, extra_delay: Duration::ZERO };
    }
    let duplicated = profile.dup_prob > 0.0
        && keyed_uniform(seed, link_key, frame_index, SALT_DUP) < profile.dup_prob;
    let extra_delay = if profile.jitter.is_zero() {
        Duration::ZERO
    } else {
        profile.jitter.mul_f64(keyed_uniform(seed, link_key, frame_index, SALT_JITTER))
    };
    Fate { lost: false, duplicated, extra_delay }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_profile_never_alters_a_frame() {
        let p = LinkProfile::default();
        assert!(p.is_perfect());
        for i in 0..1000 {
            let f = fate(&p, 42, 7, i, SimTime::from_secs(1));
            assert_eq!(f, Fate { lost: false, duplicated: false, extra_delay: Duration::ZERO });
        }
    }

    #[test]
    fn zero_loss_draws_never_lose_even_with_other_impairments_active() {
        // loss_prob = 0 short-circuits: the loss decision is identical
        // to the perfect wire no matter what dup/jitter do.
        let p = LinkProfile::PERFECT.with_dup(0.5).with_jitter(Duration::from_millis(1));
        for i in 0..1000 {
            assert!(!fate(&p, 9, 3, i, SimTime::ZERO).lost);
        }
    }

    #[test]
    fn fate_is_a_pure_function_of_its_key() {
        let p = LinkProfile::lossy(0.3).with_dup(0.2).with_jitter(Duration::from_micros(50));
        let a = fate(&p, 1, 2, 3, SimTime::from_millis(5));
        let b = fate(&p, 1, 2, 3, SimTime::from_millis(5));
        assert_eq!(a, b);
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let p = LinkProfile::lossy(0.25);
        let lost = (0..10_000).filter(|&i| fate(&p, 11, 5, i, SimTime::ZERO).lost).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn independent_links_draw_independently() {
        let p = LinkProfile::lossy(0.5);
        let fates_a: Vec<bool> = (0..64).map(|i| fate(&p, 42, 1, i, SimTime::ZERO).lost).collect();
        let fates_b: Vec<bool> = (0..64).map(|i| fate(&p, 42, 2, i, SimTime::ZERO).lost).collect();
        assert_ne!(fates_a, fates_b, "distinct links must not share a loss pattern");
    }

    #[test]
    fn flap_schedule_windows() {
        let flap = FlapSchedule {
            offset: Duration::from_secs(2),
            down_for: Duration::from_secs(1),
            period: Duration::from_secs(5),
        };
        assert!(!flap.is_down(SimTime::from_secs(1)));
        assert!(flap.is_down(SimTime::from_millis(2500)));
        assert!(!flap.is_down(SimTime::from_secs(4)));
        // Next period: down again at 7s..8s.
        assert!(flap.is_down(SimTime::from_millis(7500)));
        assert!(!flap.is_down(SimTime::from_millis(8500)));
    }

    #[test]
    fn clamping_keeps_probabilities_sane() {
        let p = LinkProfile::PERFECT.with_loss(3.0).with_dup(-1.0);
        assert_eq!(p.loss_prob, 1.0);
        assert_eq!(p.dup_prob, 0.0);
    }
}
