//! Topology construction errors.

use std::error::Error;
use std::fmt;

use crate::device::{DeviceId, PortId};

/// Error building or mutating a simulated topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetsimError {
    /// The referenced device id does not exist.
    UnknownDevice(DeviceId),
    /// The referenced port is at or beyond the device's port count.
    BadPort {
        /// Device whose port was referenced.
        device: DeviceId,
        /// The out-of-range port.
        port: PortId,
        /// Number of ports the device actually has.
        count: usize,
    },
    /// The port already has a link attached.
    PortInUse {
        /// Device whose port is occupied.
        device: DeviceId,
        /// The occupied port.
        port: PortId,
    },
    /// A device cannot be linked to itself.
    SelfLink(DeviceId),
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            NetsimError::BadPort { device, port, count } => {
                write!(f, "{device} has {count} ports, {port} is out of range")
            }
            NetsimError::PortInUse { device, port } => {
                write!(f, "{device} {port} already has a link")
            }
            NetsimError::SelfLink(d) => write!(f, "cannot link {d} to itself"),
        }
    }
}

impl Error for NetsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parties() {
        let e = NetsimError::BadPort { device: DeviceId(1), port: PortId(9), count: 4 };
        assert_eq!(e.to_string(), "dev1 has 4 ports, port9 is out of range");
        assert!(NetsimError::PortInUse { device: DeviceId(0), port: PortId(0) }
            .to_string()
            .contains("already"));
        assert!(NetsimError::SelfLink(DeviceId(2)).to_string().contains("itself"));
        assert!(NetsimError::UnknownDevice(DeviceId(5)).to_string().contains("dev5"));
    }
}
