//! The eavesdropping payoff of MAC flooding: once the CAM is full, a
//! switch in fail-open mode degrades to a hub and third parties see
//! unicast conversations that were previously private.

use std::time::Duration;

use arpshield_netsim::{
    Device, DeviceCtx, FailMode, PortId, SimTime, Simulator, Switch, SwitchConfig,
};
use arpshield_packet::{EtherType, EthernetFrame, MacAddr};

/// Sends one unicast frame to a peer every 10 ms.
struct Talker {
    me: MacAddr,
    peer: MacAddr,
}

impl Device for Talker {
    fn name(&self) -> &str {
        "talker"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(Duration::from_millis(10), 1);
    }
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, _t: u64) {
        let frame =
            EthernetFrame::new(self.peer, self.me, EtherType::Other(0x4242), b"secret".to_vec());
        ctx.send(PortId(0), frame.encode());
        ctx.schedule_in(Duration::from_millis(10), 1);
    }
    fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
}

/// Counts frames of the private conversation it overhears.
struct Eavesdropper {
    overheard: std::rc::Rc<std::cell::RefCell<u64>>,
}

impl Device for Eavesdropper {
    fn name(&self) -> &str {
        "eavesdropper"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, frame: &[u8]) {
        if let Ok(eth) = EthernetFrame::parse(frame) {
            if eth.ethertype == EtherType::Other(0x4242) {
                *self.overheard.borrow_mut() += 1;
            }
        }
    }
}

/// Emits frames from `count` forged sources, then stops.
struct SourceForger {
    count: u32,
    sent: u32,
}

impl Device for SourceForger {
    fn name(&self) -> &str {
        "forger"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(Duration::from_millis(1), 1);
    }
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, _t: u64) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        let src = MacAddr::from_index(10_000 + self.sent);
        let frame =
            EthernetFrame::new(MacAddr::BROADCAST, src, EtherType::Other(0x9999), vec![0; 46]);
        ctx.send(PortId(0), frame.encode());
        ctx.schedule_in(Duration::from_millis(1), 1);
    }
    fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
}

fn run(fail_mode: FailMode, flood: bool) -> (u64, u64) {
    let mut sim = Simulator::new(5);
    let (sw, handle) = Switch::new(
        "sw",
        SwitchConfig { ports: 8, cam_capacity: 8, fail_mode, ..Default::default() },
    );
    let sw = sim.add_device(Box::new(sw));
    let a = MacAddr::from_index(1);
    let b = MacAddr::from_index(2);
    let t1 = sim.add_device(Box::new(Talker { me: a, peer: b }));
    let t2 = sim.add_device(Box::new(Talker { me: b, peer: a }));
    let overheard = std::rc::Rc::new(std::cell::RefCell::new(0u64));
    let spy = sim.add_device(Box::new(Eavesdropper { overheard: std::rc::Rc::clone(&overheard) }));
    sim.connect(t1, PortId(0), sw, PortId(0), Duration::from_micros(5)).unwrap();
    sim.connect(t2, PortId(0), sw, PortId(1), Duration::from_micros(5)).unwrap();
    sim.connect(spy, PortId(0), sw, PortId(2), Duration::from_micros(5)).unwrap();
    if flood {
        let f = sim.add_device(Box::new(SourceForger { count: 64, sent: 0 }));
        sim.connect(f, PortId(0), sw, PortId(3), Duration::from_micros(5)).unwrap();
    }
    // Let the talkers establish their CAM entries first? No — the forger
    // races them, exactly like a real attack. Run and observe.
    sim.run_until(SimTime::from_secs(2));
    let cam = handle.cam.borrow().occupancy() as u64;
    let n = *overheard.borrow();
    (n, cam)
}

#[test]
fn without_flooding_unicast_stays_private() {
    let (overheard, _) = run(FailMode::FloodOpen, false);
    // Only the first frame of each direction (unknown destination)
    // floods; everything after is switched point-to-point.
    assert!(overheard <= 2, "private conversation leaked {overheard} frames");
}

#[test]
fn fail_open_flood_exposes_unicast_traffic() {
    let (overheard, cam) = run(FailMode::FloodOpen, true);
    assert_eq!(cam, 8, "CAM must be pinned full");
    // The talkers' entries age out / can't re-learn; their conversation
    // floods to the eavesdropper — the attack's entire point.
    assert!(overheard > 50, "expected a leak, overheard only {overheard}");
}

#[test]
fn drop_new_mode_contains_the_flood() {
    let (overheard, _) = run(FailMode::DropNew, true);
    // With DropNew, unlearnable sources are dropped; the talkers that
    // got in first keep their entries and privacy. (If the forger won
    // the race instead, the talkers would be the ones cut off — the
    // availability-for-confidentiality trade DropNew makes.)
    assert!(overheard <= 2, "DropNew should preserve privacy, leaked {overheard}");
}
