//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! Exists so the bench harness can emit `results/bench/*.json` and the
//! test suite can *validate* those artifacts without a serde dependency.
//! Supports the full JSON grammar except `\u` escapes beyond the BMP.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member access for objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escapes and quotes a string for JSON output.
pub fn quote(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a number the way the harness writes it: integers without a
/// fractional part, everything else in shortest-roundtrip form.
pub fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => f.write_str(&fmt_num(*n)),
            Value::Str(s) => f.write_str(&quote(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", quote(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", byte as char, pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape
                // in one append. `"` and `\` are ASCII, so they can
                // never appear inside a UTF-8 continuation sequence,
                // and the input is a &str, so the run is valid UTF-8.
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn display_output_reparses_identically() {
        let original = parse(
            r#"{"name":"bench \"x\"","values":[0,1.25,1e9],"unicode":"µs A","empty":[],"obj":{}}"#,
        )
        .unwrap();
        let reparsed = parse(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(3.5), "3.5");
        assert_eq!(Value::Num(1e9).to_string(), "1000000000");
    }
}
