//! A proptest-lite property-test runner: strategies, a seeded case
//! runner, and greedy input shrinking — with zero registry dependencies.
//!
//! The surface deliberately mirrors the subset of `proptest` the
//! workspace uses, so porting a suite is a handful of `use` edits:
//! [`any`], range strategies, [`collection::vec`], [`Just`],
//! [`prop_oneof!`](crate::prop_oneof), `prop_map`, and the
//! [`properties!`](crate::properties) block macro with
//! [`prop_assert!`](crate::prop_assert)-style assertions.
//!
//! Every run is deterministic: case `i` of property `name` draws from a
//! [`TestRng`] stream derived from `(seed, name, i)`. On failure the
//! runner greedily shrinks the input and panics with the seed, the case
//! index, and both the original and shrunk inputs.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{RandomValue, TestRng};

/// Default number of cases per property (override with `TESTKIT_CASES`).
pub const DEFAULT_CASES: u32 = 128;

/// Default base seed (override with `TESTKIT_SEED`).
pub const DEFAULT_SEED: u64 = 0x5eed_0001_ca11_ab1e;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of test inputs plus a shrinking rule for them.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Clone + fmt::Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly-simpler candidates for a failing value, most
    /// aggressive first. An empty list means the value is minimal (or the
    /// strategy cannot shrink, e.g. after [`prop_map`](Strategy::prop_map)).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transforms generated values. The mapped strategy does not shrink
    /// (the transform is not invertible in general).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy, for heterogeneous collections such as
    /// [`prop_oneof!`](crate::prop_oneof).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Clone + fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// Values with an obvious "simpler than" ordering, so [`any`] and range
/// strategies can shrink toward a floor.
pub trait Shrink: Sized {
    /// Candidates strictly simpler than `self`, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_uint {
    ($($ty:ty),+ $(,)?) => {$(
        impl Shrink for $ty {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2, v - 1];
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )+};
}

impl_shrink_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_shrink_int {
    ($($ty:ty),+ $(,)?) => {$(
        impl Shrink for $ty {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let towards_zero = if v > 0 { v - 1 } else { v + 1 };
                let mut out = vec![0, v / 2, towards_zero];
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )+};
}

impl_shrink_int!(i8, i16, i32, i64, i128, isize);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink_candidates(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 || !v.is_finite() {
            return Vec::new();
        }
        vec![0.0, v / 2.0]
    }
}

impl Shrink for f32 {
    fn shrink_candidates(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 || !v.is_finite() {
            return Vec::new();
        }
        vec![0.0, v / 2.0]
    }
}

impl<T: Shrink + Clone, const N: usize> Shrink for [T; N] {
    fn shrink_candidates(&self) -> Vec<Self> {
        // One candidate per position: that element's most aggressive shrink.
        let mut out = Vec::new();
        for i in 0..N {
            if let Some(simpler) = self[i].shrink_candidates().into_iter().next() {
                let mut copy = self.clone();
                copy[i] = simpler;
                out.push(copy);
            }
        }
        out
    }
}

/// The strategy behind [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates an unconstrained value of a primitive type or array thereof.
pub fn any<T: RandomValue + Shrink + Clone + fmt::Debug>() -> Any<T> {
    Any(PhantomData)
}

impl<T: RandomValue + Shrink + Clone + fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_candidates()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                shrink_toward!($ty, self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                shrink_toward!($ty, *self.start(), *value)
            }
        }
    )+};
}

/// Candidates between a range's floor and the failing value: the floor
/// itself, the midpoint, and one step down.
macro_rules! shrink_toward {
    ($ty:ty, $lo:expr, $v:expr) => {{
        let (lo, v): ($ty, $ty) = ($lo, $v);
        if v <= lo {
            Vec::new()
        } else {
            let mut out = vec![lo, lo + (v - lo) / 2, v - 1];
            out.dedup();
            out.retain(|&c| c >= lo && c < v);
            out
        }
    }};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let lo = self.start;
        if *value <= lo {
            return Vec::new();
        }
        let mid = lo + (*value - lo) / 2.0;
        let mut out = vec![lo, mid];
        out.retain(|c| *c >= lo && *c < *value);
        out
    }
}

/// A strategy that always produces the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Maps a strategy's output through a function. See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Chooses uniformly among several strategies producing the same type.
/// Usually built with [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Clone + fmt::Debug> OneOf<T> {
    /// Builds the union strategy; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T: Clone + fmt::Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

impl_strategy_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::*;

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The strategy behind [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            // Structural shrinks first: shorter vectors are always simpler.
            if len > self.size.lo {
                let half = (len / 2).max(self.size.lo);
                if half < len {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..len - 1].to_vec());
            }
            // Then element-wise: each position's most aggressive shrink.
            for i in 0..len {
                if let Some(simpler) = self.element.shrink(&value[i]).into_iter().next() {
                    let mut copy = value.clone();
                    copy[i] = simpler;
                    out.push(copy);
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// A failed assertion inside a property body; created by the
/// [`prop_assert!`](crate::prop_assert) family.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a property body returns: `Ok(())` or the first failed assertion.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration: base seed, case count, shrink budget.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Base seed; case streams derive from this, the property name, and
    /// the case index.
    pub seed: u64,
    /// Maximum number of candidate evaluations during shrinking.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: DEFAULT_CASES, seed: DEFAULT_SEED, max_shrink_steps: 16_384 }
    }
}

impl Config {
    /// Reads `TESTKIT_CASES` and `TESTKIT_SEED` (decimal or `0x`-hex)
    /// over the defaults.
    pub fn from_env() -> Self {
        let mut config = Config::default();
        if let Ok(cases) = std::env::var("TESTKIT_CASES") {
            if let Ok(n) = cases.parse() {
                config.cases = n;
            }
        }
        if let Ok(seed) = std::env::var("TESTKIT_SEED") {
            let parsed = seed
                .strip_prefix("0x")
                .map_or_else(|| seed.parse(), |hex| u64::from_str_radix(hex, 16));
            if let Ok(s) = parsed {
                config.seed = s;
            }
        }
        config
    }
}

/// A property failure: the seed to replay it, the case that tripped it,
/// and the original and shrunk inputs.
#[derive(Debug)]
pub struct PropertyFailure<V> {
    /// The property's name.
    pub name: String,
    /// The base seed the run used (`TESTKIT_SEED` replays it).
    pub seed: u64,
    /// Index of the failing case.
    pub case: u32,
    /// The input as originally generated.
    pub original: V,
    /// The input after greedy shrinking.
    pub shrunk: V,
    /// The failure message of the shrunk input.
    pub message: String,
    /// How many shrink candidates were evaluated.
    pub shrink_steps: u32,
}

impl<V: fmt::Debug> fmt::Display for PropertyFailure<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "property `{}` failed (case #{})", self.name, self.case)?;
        writeln!(f, "  seed: {:#018x} (set TESTKIT_SEED to replay)", self.seed)?;
        writeln!(f, "  original input: {:?}", self.original)?;
        writeln!(f, "  shrunk input ({} steps): {:?}", self.shrink_steps, self.shrunk)?;
        write!(f, "  error: {}", self.message)
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Silences the default panic hook while the runner probes candidate
/// inputs, so shrinking a panicking property does not spam stderr.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

struct QuietGuard;

impl QuietGuard {
    fn new() -> Self {
        install_quiet_panic_hook();
        QUIET_PANICS.with(|q| q.set(true));
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        QUIET_PANICS.with(|q| q.set(false));
    }
}

fn run_case<V, F>(f: &F, value: &V) -> Result<(), String>
where
    V: Clone,
    F: Fn(V) -> TestCaseResult,
{
    match panic::catch_unwind(AssertUnwindSafe(|| f(value.clone()))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.0),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Runs `config.cases` seeded cases of the property `f` over inputs from
/// `strategy`. Returns the number of cases run, or the shrunk failure.
///
/// This is the engine under the [`properties!`](crate::properties) macro;
/// call it directly to assert *on* a failure (as the testkit's own
/// shrinking tests do).
pub fn check<S, F>(
    name: &str,
    strategy: &S,
    config: &Config,
    f: F,
) -> Result<u32, Box<PropertyFailure<S::Value>>>
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    for case in 0..config.cases {
        let mut rng = TestRng::with_stream(config.seed ^ fnv1a(name), u64::from(case) + 1);
        let original = strategy.generate(&mut rng);
        let guard = QuietGuard::new();
        if let Err(first_message) = run_case(&f, &original) {
            let (shrunk, message, shrink_steps) = shrink_failure(
                strategy,
                original.clone(),
                first_message,
                &f,
                config.max_shrink_steps,
            );
            drop(guard);
            return Err(Box::new(PropertyFailure {
                name: name.to_string(),
                seed: config.seed,
                case,
                original,
                shrunk,
                message,
                shrink_steps,
            }));
        }
        drop(guard);
    }
    Ok(config.cases)
}

/// Greedy shrinking: repeatedly replace the failing input with its first
/// still-failing shrink candidate until none fails or the budget runs out.
fn shrink_failure<S, F>(
    strategy: &S,
    mut current: S::Value,
    mut message: String,
    f: &F,
    max_steps: u32,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut steps = 0;
    'progress: while steps < max_steps {
        for candidate in strategy.shrink(&current) {
            steps += 1;
            if let Err(m) = run_case(f, &candidate) {
                current = candidate;
                message = m;
                continue 'progress;
            }
            if steps >= max_steps {
                break;
            }
        }
        break;
    }
    (current, message, steps)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares a block of property tests, proptest-style:
///
/// ```rust
/// use arpshield_testkit::prelude::*;
///
/// // In a test file each property carries `#[test]`, exactly like
/// // proptest's block macro.
/// arpshield_testkit::properties! {
///     fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
///         prop_assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! properties {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            let config = $crate::prop::Config::from_env();
            let outcome = $crate::prop::check(stringify!($name), &strategy, &config, |($($arg,)+)| {
                $body
                Ok(())
            });
            if let Err(failure) = outcome {
                panic!("{failure}");
            }
        }
    )*};
}

/// Asserts a condition inside a property body, failing the case (and
/// triggering shrinking) instead of aborting the whole run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion for property bodies; see [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::prop::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Inequality assertion for property bodies; see [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::prop::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                left,
                file!(),
                line!()
            )));
        }
    }};
}

/// Chooses uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::OneOf::new(vec![$($crate::prop::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(cases: u32) -> Config {
        Config { cases, seed: DEFAULT_SEED, max_shrink_steps: 65_536 }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = check("tautology", &(any::<u32>(),), &config(64), |(x,)| {
            prop_assert_eq!(x, x);
            Ok(())
        })
        .expect("tautology must pass");
        assert_eq!(ran, 64);
    }

    #[test]
    fn planted_failure_shrinks_to_minimal_counterexample() {
        // Fails exactly when x >= 1000: the unique minimal counterexample
        // is 1000, and greedy shrinking must land on it.
        let failure = check("planted_threshold", &(0u32..10_000,), &config(256), |(x,)| {
            prop_assert!(x < 1000, "x = {x} crossed the threshold");
            Ok(())
        })
        .expect_err("property must fail");
        assert_eq!(failure.shrunk.0, 1000);
        assert!(failure.original.0 >= 1000);
        assert!(failure.message.contains("threshold"));
    }

    #[test]
    fn failure_report_names_seed_case_and_shrunk_input() {
        let failure = check("planted_report", &(0u64..1_000_000,), &config(128), |(x,)| {
            prop_assert!(x < 10);
            Ok(())
        })
        .expect_err("property must fail");
        let report = failure.to_string();
        assert!(report.contains("seed: 0x5eed0001ca11ab1e"), "report: {report}");
        assert!(report.contains("shrunk input"), "report: {report}");
        assert!(report.contains("10"), "report: {report}");
        assert!(report.contains("TESTKIT_SEED"), "report: {report}");
    }

    #[test]
    fn vec_shrinking_minimizes_both_length_and_elements() {
        let strategy = (collection::vec(any::<u8>(), 0..100),);
        let failure = check("planted_vec", &strategy, &config(256), |(v,)| {
            prop_assert!(v.len() < 5);
            Ok(())
        })
        .expect_err("property must fail");
        assert_eq!(failure.shrunk.0, vec![0u8; 5], "minimal: shortest failing length, zeroed");
    }

    #[test]
    fn shrinking_handles_panicking_properties() {
        let failure = check("planted_panic", &(0u32..5_000,), &config(256), |(x,)| {
            assert!(x < 700, "boom at {x}");
            Ok(())
        })
        .expect_err("property must fail");
        assert_eq!(failure.shrunk.0, 700);
        assert!(failure.message.contains("boom"), "message: {}", failure.message);
    }

    #[test]
    fn failures_are_deterministic_for_a_fixed_seed() {
        let run = || {
            check("planted_det", &(0u32..1 << 20,), &config(512), |(x,)| {
                prop_assert!(x % 7 != 3);
                Ok(())
            })
            .expect_err("property must fail")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.case, b.case);
        assert_eq!(a.original.0, b.original.0);
        assert_eq!(a.shrunk.0, b.shrunk.0);
        assert_eq!(a.shrunk.0 % 7, 3);
    }

    #[test]
    fn tuple_strategies_shrink_componentwise() {
        let failure =
            check("planted_tuple", &((0u32..100, 0u32..100),), &config(512), |((a, b),)| {
                prop_assert!(a < 10 || b < 10);
                Ok(())
            })
            .expect_err("property must fail");
        let (a, b) = failure.shrunk.0;
        assert_eq!((a, b), (10, 10));
    }

    #[test]
    fn oneof_and_just_generate_only_their_options() {
        let strategy = (prop_oneof![Just(2u8), Just(5u8), Just(9u8)],);
        let mut seen = std::collections::BTreeSet::new();
        check("oneof_members", &strategy, &config(256), |(x,)| {
            prop_assert!([2u8, 5, 9].contains(&x));
            Ok(())
        })
        .expect("members only");
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            seen.insert(strategy.0.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![2, 5, 9]);
    }

    #[test]
    fn prop_map_transforms_generated_values() {
        let doubled = (0u32..50).prop_map(|x| x * 2);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    properties! {
        /// The macro itself: argument binding, strategies, assertions.
        #[test]
        fn macro_binds_arguments(a in any::<u16>(), v in collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(v.len() < 10);
            prop_assert_eq!(u32::from(a) * 2, u32::from(a) + u32::from(a));
            prop_assert_ne!(v.len(), 11);
        }
    }
}
