//! The testkit's deterministic PRNG: PCG-XSH-RR 64/32.
//!
//! Distinct from `arpshield_netsim::SimRng` (SplitMix64) on purpose: the
//! simulator's random streams are part of the *system under test*, while
//! this generator drives the *test inputs*. Keeping them separate means a
//! change to test-case generation can never perturb a simulation replay,
//! and vice versa.
//!
//! ```rust
//! use arpshield_testkit::TestRng;
//!
//! let mut a = TestRng::new(7);
//! let mut b = TestRng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use std::ops::{Bound, RangeBounds};

const MULTIPLIER: u64 = 6_364_136_223_846_793_005;
const DEFAULT_STREAM: u64 = 0x14057b7ef767814f;

/// A seedable PCG32 generator: 64-bit state, 32-bit output, with an
/// explicit stream so independent generators can share a seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    state: u64,
    inc: u64,
}

impl TestRng {
    /// Creates a generator on the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, DEFAULT_STREAM)
    }

    /// Creates a generator on a specific stream; generators with the same
    /// seed but different streams produce independent sequences.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = TestRng { state: 0, inc: (stream << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Returns the next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns the next 128 pseudo-random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Fills the buffer with pseudo-random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Returns a uniformly distributed value of a primitive type (for
    /// floats: the unit interval `[0, 1)`).
    pub fn gen<T: RandomValue>(&mut self) -> T {
        T::random(self)
    }

    /// Returns a value uniformly distributed over the range.
    ///
    /// Supports `lo..hi`, `lo..=hi`, and unbounded ends for every
    /// primitive integer type, plus `lo..hi` for `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T {
        T::sample(self, range.start_bound(), range.end_bound())
    }

    /// Derives an independent child generator.
    pub fn fork(&mut self) -> TestRng {
        let seed = self.next_u64();
        let stream = self.next_u64();
        TestRng::with_stream(seed, stream)
    }
}

/// Types [`TestRng::gen`] can produce.
pub trait RandomValue {
    /// Draws one uniformly distributed value.
    fn random(rng: &mut TestRng) -> Self;
}

macro_rules! impl_random_int {
    ($($ty:ty => $src:ident),+ $(,)?) => {$(
        impl RandomValue for $ty {
            fn random(rng: &mut TestRng) -> Self {
                rng.$src() as $ty
            }
        }
    )+};
}

impl_random_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, u128 => next_u128,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    i128 => next_u128, isize => next_u64,
);

impl RandomValue for bool {
    fn random(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RandomValue for f32 {
    fn random(rng: &mut TestRng) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl<T: RandomValue, const N: usize> RandomValue for [T; N] {
    fn random(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::random(rng))
    }
}

/// Types [`TestRng::gen_range`] can sample from a range.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly distributed between the bounds.
    fn sample(rng: &mut TestRng, lo: Bound<&Self>, hi: Bound<&Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),+ $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample(rng: &mut TestRng, lo: Bound<&Self>, hi: Bound<&Self>) -> Self {
                let lo = match lo {
                    Bound::Included(&x) => x,
                    Bound::Excluded(&x) => x.checked_add(1).expect("empty range"),
                    Bound::Unbounded => <$ty>::MIN,
                };
                let hi = match hi {
                    Bound::Included(&x) => x,
                    Bound::Excluded(&x) => x.checked_sub(1).expect("empty range"),
                    Bound::Unbounded => <$ty>::MAX,
                };
                assert!(lo <= hi, "empty range");
                // Work in offset space so signed types sample correctly.
                let span = (hi as i128).wrapping_sub(lo as i128).wrapping_add(1) as u128;
                if span == 0 {
                    // Full 128-bit domain.
                    return rng.next_u128() as $ty;
                }
                // Rejection sampling to avoid modulo bias.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let r = rng.next_u128();
                    if r <= zone {
                        return ((lo as i128).wrapping_add((r % span) as i128)) as $ty;
                    }
                }
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut TestRng, lo: Bound<&Self>, hi: Bound<&Self>) -> Self {
        let lo = match lo {
            Bound::Included(&x) | Bound::Excluded(&x) => x,
            Bound::Unbounded => 0.0,
        };
        let hi = match hi {
            Bound::Included(&x) | Bound::Excluded(&x) => x,
            Bound::Unbounded => 1.0,
        };
        assert!(lo <= hi, "empty range");
        let unit: f64 = rng.gen();
        lo + unit * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed_across_runs() {
        // Pinned outputs: these must never change, or every recorded
        // failing seed in a bug report stops reproducing.
        let mut rng = TestRng::new(42);
        assert_eq!(
            [rng.next_u32(), rng.next_u32(), rng.next_u32()],
            [492_690_617, 1_919_685_028, 3_561_993_920]
        );
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_with_same_seed_diverge() {
        let mut a = TestRng::with_stream(1, 1);
        let mut b = TestRng::with_stream(1, 2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_odd_lengths() {
        for len in [0usize, 1, 3, 4, 5, 17] {
            let mut a = TestRng::new(9);
            let mut b = TestRng::new(9);
            let mut buf_a = vec![0u8; len];
            let mut buf_b = vec![0u8; len];
            a.fill_bytes(&mut buf_a);
            b.fill_bytes(&mut buf_b);
            assert_eq!(buf_a, buf_b);
        }
        let mut rng = TestRng::new(3);
        let mut buf = [0u8; 64];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..10_000 {
            let x: u8 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = rng.gen_range(0.0..1e9);
            assert!((0.0..1e9).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = TestRng::new(8);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        #[allow(clippy::reversed_empty_ranges)]
        TestRng::new(1).gen_range(5u32..5);
    }

    #[test]
    fn gen_produces_all_primitive_shapes() {
        let mut rng = TestRng::new(11);
        let _: u128 = rng.gen();
        let _: bool = rng.gen();
        let mac: [u8; 6] = rng.gen();
        assert_eq!(mac.len(), 6);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn forked_generators_are_independent() {
        let mut parent = TestRng::new(1);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
