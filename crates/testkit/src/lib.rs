//! # arpshield-testkit
//!
//! The workspace's in-tree, zero-registry-dependency correctness and
//! performance toolkit:
//!
//! * [`rng`] — a seeded PCG32 generator ([`TestRng`]) for deterministic
//!   test-input streams, independent of the simulator's own RNG.
//! * [`prop`] — a proptest-lite property runner: [`Strategy`]
//!   combinators, the [`properties!`] block macro, seeded case
//!   generation, and greedy shrinking that reports the seed and the
//!   minimal counterexample.
//! * [`bench`] — a criterion-lite harness behind the same
//!   `criterion_group!`/`criterion_main!` surface, timing with
//!   calibration + warmup + fixed-iteration sampling and writing
//!   median/mean/throughput JSON to `results/bench/<name>.json`.
//! * [`json`] — the minimal JSON writer/parser the bench artifacts and
//!   their validation tests share.
//!
//! The point of the crate (see the "Zero registry dependencies" section
//! of the top-level README): `cargo build && cargo test && cargo bench`
//! must work from a bare Rust toolchain with no network and no vendored
//! registry, because this environment has neither.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::{BenchConfig, Bencher, BenchmarkGroup, BenchmarkId, Criterion, Throughput};
pub use prop::{Strategy, TestCaseError, TestCaseResult};
pub use rng::TestRng;

/// Everything a property-test file needs, proptest-prelude-style.
pub mod prelude {
    pub use crate::prop::{any, collection, Config, Just, OneOf, Strategy};
    pub use crate::rng::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, properties};
}
