//! A criterion-lite bench harness.
//!
//! Exposes the subset of the `criterion` API the workspace's seven
//! `harness = false` benches use — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Throughput`], `sample_size`, `bench_function`,
//! `bench_with_input`, and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — so a bench ports
//! by rewriting its `use criterion::...` line to `use arpshield_testkit::...`.
//!
//! Measurement model: one calibration call sizes the per-sample
//! iteration count so a sample lasts roughly
//! [`BenchConfig::target_sample_nanos`]; after a warmup call, each of
//! `samples` timed calls records a per-iteration figure. Median, mean,
//! min/max, and standard deviation land in
//! `results/bench/<bench-name>.json` (see [`Criterion::final_summary`]),
//! which is the repo's perf-trajectory feed. Set `TESTKIT_BENCH_SMOKE=1`
//! for a 1-iteration × 1-sample smoke run (CI), `TESTKIT_BENCH_SAMPLES`
//! to adjust depth.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::json;

/// Measurement depth configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Timed samples per benchmark (a group's `sample_size` overrides).
    pub samples: usize,
    /// Target wall-clock per sample; sets the per-sample iteration count.
    pub target_sample_nanos: u128,
    /// Fixed per-sample iteration count; skips calibration when set.
    pub fixed_iters: Option<u64>,
    /// Skip the warmup call (smoke mode).
    pub skip_warmup: bool,
}

impl BenchConfig {
    /// Full-fidelity defaults: 20 samples targeting ~5 ms each.
    pub fn measured() -> Self {
        BenchConfig {
            samples: 20,
            target_sample_nanos: 5_000_000,
            fixed_iters: None,
            skip_warmup: false,
        }
    }

    /// 1 iteration × 1 sample, no warmup: verifies every bench *runs*
    /// and emits its JSON, in seconds instead of minutes.
    pub fn smoke() -> Self {
        BenchConfig { samples: 1, target_sample_nanos: 0, fixed_iters: Some(1), skip_warmup: true }
    }

    /// `smoke()` under `TESTKIT_BENCH_SMOKE=1`, otherwise `measured()`
    /// with `TESTKIT_BENCH_SAMPLES` applied.
    pub fn from_env() -> Self {
        if std::env::var("TESTKIT_BENCH_SMOKE").is_ok_and(|v| v == "1") {
            return BenchConfig::smoke();
        }
        let mut config = BenchConfig::measured();
        if let Ok(samples) = std::env::var("TESTKIT_BENCH_SAMPLES") {
            if let Ok(n) = samples.parse::<usize>() {
                config.samples = n.max(1);
            }
        }
        config
    }
}

/// Units-processed-per-iteration annotation, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A named benchmark with a parameter, rendered `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: Some(name.into()), parameter: Some(parameter.to_string()) }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: None, parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => format!("{n}/{p}"),
            (Some(n), None) => n.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => "bench".to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: Some(name.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name: Some(name), parameter: None }
    }
}

/// Times the measured routine. Passed to every bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine `iters` times and records the wall-clock total.
    /// The routine's output is passed through [`std::hint::black_box`] so
    /// the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// The owning group's name.
    pub group: String,
    /// The rendered benchmark id within the group.
    pub id: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean ns/iteration across samples.
    pub mean_ns: f64,
    /// Median ns/iteration across samples.
    pub median_ns: f64,
    /// Fastest sample's ns/iteration.
    pub min_ns: f64,
    /// Slowest sample's ns/iteration.
    pub max_ns: f64,
    /// Population standard deviation of ns/iteration.
    pub stddev_ns: f64,
    /// The group's throughput annotation at registration time.
    pub throughput: Option<Throughput>,
}

impl BenchRecord {
    fn to_json(&self) -> json::Value {
        let mut obj = BTreeMap::new();
        obj.insert("group".into(), json::Value::Str(self.group.clone()));
        obj.insert("id".into(), json::Value::Str(self.id.clone()));
        obj.insert("iters_per_sample".into(), json::Value::Num(self.iters_per_sample as f64));
        obj.insert("samples".into(), json::Value::Num(self.samples as f64));
        obj.insert("mean_ns".into(), json::Value::Num(self.mean_ns));
        obj.insert("median_ns".into(), json::Value::Num(self.median_ns));
        obj.insert("min_ns".into(), json::Value::Num(self.min_ns));
        obj.insert("max_ns".into(), json::Value::Num(self.max_ns));
        obj.insert("stddev_ns".into(), json::Value::Num(self.stddev_ns));
        if let Some(throughput) = self.throughput {
            let (kind, per_iter) = match throughput {
                Throughput::Bytes(n) => ("bytes", n),
                Throughput::Elements(n) => ("elements", n),
            };
            let per_sec =
                if self.median_ns > 0.0 { per_iter as f64 * 1e9 / self.median_ns } else { 0.0 };
            let mut t = BTreeMap::new();
            t.insert("kind".into(), json::Value::Str(kind.into()));
            t.insert("per_iter".into(), json::Value::Num(per_iter as f64));
            t.insert("per_sec".into(), json::Value::Num(per_sec));
            obj.insert("throughput".into(), json::Value::Obj(t));
        }
        json::Value::Obj(obj)
    }
}

/// The harness: collects benchmark registrations and their statistics,
/// then writes the per-binary JSON summary.
pub struct Criterion {
    config: BenchConfig,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::with_config(BenchConfig::from_env())
    }
}

impl Criterion {
    /// A harness with an explicit measurement configuration.
    pub fn with_config(config: BenchConfig) -> Self {
        Criterion { config, records: Vec::new() }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None, throughput: None }
    }

    /// Registers a group-less benchmark (criterion parity; the group
    /// name doubles as the id).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let record = self.measure(id.to_string(), id.to_string(), None, None, f);
        self.records.push(record);
        self
    }

    /// All statistics collected so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    fn measure<F: FnMut(&mut Bencher)>(
        &self,
        group: String,
        id: String,
        sample_size: Option<usize>,
        throughput: Option<Throughput>,
        mut f: F,
    ) -> BenchRecord {
        let config = &self.config;
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Calibrate: one iteration tells us roughly what one costs.
        f(&mut bencher);
        let single_ns = bencher.elapsed.as_nanos().max(1);
        let iters = config.fixed_iters.unwrap_or_else(|| {
            (config.target_sample_nanos / single_ns).clamp(1, 1_000_000_000) as u64
        });

        if !config.skip_warmup {
            bencher.iters = iters;
            f(&mut bencher);
        }

        // A group's sample_size tunes *measured* runs; fixed-iteration
        // (smoke) runs keep their minimal depth regardless.
        let samples = if config.fixed_iters.is_some() {
            config.samples
        } else {
            sample_size.unwrap_or(config.samples)
        }
        .max(1);
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters;
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }

        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let n = per_iter_ns.len();
        let mean = per_iter_ns.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        let variance = per_iter_ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;

        let record = BenchRecord {
            group,
            id,
            iters_per_sample: iters,
            samples: n,
            mean_ns: mean,
            median_ns: median,
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[n - 1],
            stddev_ns: variance.sqrt(),
            throughput,
        };
        println!(
            "{}/{}  median {}  mean {}  ({} samples x {} iters)",
            record.group,
            record.id,
            human_time(record.median_ns),
            human_time(record.mean_ns),
            record.samples,
            record.iters_per_sample,
        );
        record
    }

    /// The JSON summary document for everything run so far.
    pub fn summary_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("schema".into(), json::Value::Str("arpshield-bench-v1".into()));
        obj.insert(
            "results".into(),
            json::Value::Arr(self.records.iter().map(BenchRecord::to_json).collect()),
        );
        let mut out = json::Value::Obj(obj).to_string();
        out.push('\n');
        out
    }

    /// Writes the summary to `results/bench/<name>.json` under the
    /// workspace root and returns the path.
    pub fn write_summary(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = workspace_root().join("results").join("bench");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, self.summary_json())?;
        Ok(path)
    }

    /// Writes the summary named after the running bench binary. Called by
    /// [`criterion_main!`](crate::criterion_main) after all groups run.
    pub fn final_summary(&self) {
        let name = bench_binary_name();
        match self.write_summary(&name) {
            Ok(path) => println!("bench summary written to {}", path.display()),
            Err(e) => eprintln!("failed to write bench summary for {name}: {e}"),
        }
    }
}

/// A set of related benchmarks sharing a name prefix, sample size, and
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Sets the throughput annotation for subsequently registered
    /// benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Registers and immediately measures one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let record = self.criterion.measure(
            self.name.clone(),
            id.into().render(),
            self.sample_size,
            self.throughput,
            f,
        );
        self.criterion.records.push(record);
        self
    }

    /// Registers one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (statistics were recorded as each bench ran).
    pub fn finish(self) {}
}

fn human_time(ns: f64) -> String {
    let mut out = String::new();
    if ns < 1_000.0 {
        let _ = write!(out, "{ns:.1} ns");
    } else if ns < 1_000_000.0 {
        let _ = write!(out, "{:.2} µs", ns / 1_000.0);
    } else if ns < 1_000_000_000.0 {
        let _ = write!(out, "{:.2} ms", ns / 1_000_000.0);
    } else {
        let _ = write!(out, "{:.2} s", ns / 1_000_000_000.0);
    }
    out
}

/// The bench binary's name with cargo's `-<16 hex>` disambiguator
/// stripped: `packet_codec-3fa0b…` → `packet_codec`.
fn bench_binary_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()));
    let Some(stem) = stem else {
        return "bench".to_string();
    };
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Locates the workspace root (the directory whose `Cargo.toml` declares
/// `[workspace]`), so bench JSON always lands in the repo's `results/`
/// regardless of the invoking package's working directory.
fn workspace_root() -> PathBuf {
    let candidates = [
        std::env::var("CARGO_MANIFEST_DIR").ok(),
        Some(env!("CARGO_MANIFEST_DIR").to_string()),
        std::env::current_dir().ok().map(|p| p.to_string_lossy().into_owned()),
    ];
    for start in candidates.into_iter().flatten() {
        for dir in Path::new(&start).ancestors() {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
        }
    }
    PathBuf::from(".")
}

/// Bundles bench functions into one registration function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Expands to `fn main()` running the given groups and writing the JSON
/// summary. Ignores harness CLI arguments (`--bench` etc.).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_runs_exactly_one_iteration_per_sample() {
        let mut criterion = Criterion::with_config(BenchConfig::smoke());
        let mut calls = 0u64;
        {
            let mut group = criterion.benchmark_group("g");
            group.bench_function("one", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // Calibration (1) + sample (1); warmup skipped.
        assert_eq!(calls, 2);
        let record = &criterion.records()[0];
        assert_eq!((record.iters_per_sample, record.samples), (1, 1));
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let mut criterion = Criterion::with_config(BenchConfig::smoke());
        {
            let mut group = criterion.benchmark_group("codec");
            group.throughput(Throughput::Bytes(64));
            group.bench_function(BenchmarkId::new("parse", 7), |b| {
                b.iter(|| std::hint::black_box(3u64 * 7))
            });
            group.finish();
        }
        let doc = json::parse(&criterion.summary_json()).expect("summary must be valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("arpshield-bench-v1"));
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.get("group").unwrap().as_str(), Some("codec"));
        assert_eq!(r.get("id").unwrap().as_str(), Some("parse/7"));
        for key in ["mean_ns", "median_ns", "min_ns", "max_ns", "stddev_ns"] {
            assert!(r.get(key).unwrap().as_num().unwrap() >= 0.0, "missing {key}");
        }
        let throughput = r.get("throughput").unwrap();
        assert_eq!(throughput.get("kind").unwrap().as_str(), Some("bytes"));
        assert_eq!(throughput.get("per_iter").unwrap().as_num(), Some(64.0));
    }

    #[test]
    fn statistics_are_ordered_sanely() {
        let mut criterion = Criterion::with_config(BenchConfig {
            samples: 9,
            target_sample_nanos: 0,
            fixed_iters: Some(3),
            skip_warmup: true,
        });
        criterion
            .bench_function("spin", |b| b.iter(|| std::hint::black_box((0..100u32).sum::<u32>())));
        let r = &criterion.records()[0];
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        assert_eq!(r.iters_per_sample, 3);
        assert_eq!(r.samples, 9);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("stable", 100).render(), "stable/100");
        assert_eq!(BenchmarkId::from_parameter("passive").render(), "passive");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn binary_name_strips_cargo_hash() {
        // Indirect: the current test binary is `arpshield_testkit-<hash>`,
        // so the stripped name must not contain a 16-hex suffix.
        let name = bench_binary_name();
        assert!(!name.is_empty());
        if let Some((_, tail)) = name.rsplit_once('-') {
            assert!(!(tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit())));
        }
    }

    #[test]
    fn workspace_root_contains_workspace_manifest() {
        let root = workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"));
    }
}
