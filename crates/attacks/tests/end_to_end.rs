//! End-to-end attack behaviour against real victim hosts on a switched
//! LAN.

use std::time::Duration;

use arpshield_attacks::{
    ArpPoisoner, DhcpStarver, DhcpStarverConfig, GroundTruth, MitmRelay, MitmRelayConfig,
    PoisonConfig, PoisonVariant, RogueDhcpServer, RogueDhcpServerConfig,
};
use arpshield_host::apps::PingApp;
use arpshield_host::dhcp::{DhcpClientConfig, DhcpServerConfig};
use arpshield_host::{ArpPolicy, Host, HostConfig, HostHandle};
use arpshield_netsim::{DeviceId, PortId, SimTime, Simulator, Switch, SwitchConfig};
use arpshield_packet::{Ipv4Addr, Ipv4Cidr, MacAddr};

fn cidr() -> Ipv4Cidr {
    Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 24)
}

fn ip(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

fn mac(n: u32) -> MacAddr {
    MacAddr::from_index(n)
}

struct Lan {
    sim: Simulator,
    switch: DeviceId,
    next_port: u16,
}

impl Lan {
    fn new(seed: u64) -> Self {
        let mut sim = Simulator::new(seed);
        let (sw, _) = Switch::new("sw", SwitchConfig { ports: 16, ..Default::default() });
        let switch = sim.add_device(Box::new(sw));
        Lan { sim, switch, next_port: 0 }
    }

    fn attach(&mut self, device: Box<dyn arpshield_netsim::Device>) -> DeviceId {
        let id = self.sim.add_device(device);
        let port = self.next_port;
        self.next_port += 1;
        self.sim
            .connect(id, PortId(0), self.switch, PortId(port), Duration::from_micros(5))
            .unwrap();
        id
    }

    fn add_host(&mut self, config: HostConfig) -> HostHandle {
        let (host, handle) = Host::new(config);
        self.attach(Box::new(host));
        handle
    }
}

/// The classic scenario: victim pings the gateway; the attacker rebinds
/// the gateway IP to itself in the victim's cache.
#[test]
fn gratuitous_reply_poisons_standard_policy_with_existing_entry() {
    let mut lan = Lan::new(1);
    let gw = lan.add_host(HostConfig::static_ip("gw", mac(100), ip(1), cidr()));
    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::Standard),
    );
    let (ping, _) = PingApp::new(ip(1), Duration::from_millis(200));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));

    let truth = GroundTruth::new();
    let poisoner = ArpPoisoner::new(
        PoisonConfig {
            attacker_mac: mac(66),
            variant: PoisonVariant::GratuitousReply,
            victim_ip: ip(1),
            claimed_mac: mac(66),
            target: Some((ip(2), mac(2))),
            start_delay: Duration::from_secs(2), // after the entry exists
            repeat: None,
        },
        truth.clone(),
    );
    lan.attach(Box::new(poisoner));
    lan.sim.run_until(SimTime::from_secs(4));

    let now = lan.sim.now();
    assert!(victim_h.cache.borrow().is_poisoned(now, ip(1), mac(100)));
    assert_eq!(victim_h.cache.borrow().lookup(now, ip(1)), Some(mac(66)));
    assert_eq!(truth.len(), 1);
    let _ = gw;
}

/// Without an existing entry, a Standard-policy victim ignores the same
/// unsolicited broadcast reply.
#[test]
fn gratuitous_reply_fails_without_existing_entry() {
    let mut lan = Lan::new(2);
    lan.add_host(HostConfig::static_ip("gw", mac(100), ip(1), cidr()));
    let victim_h = lan.add_host(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::Standard),
    );
    let truth = GroundTruth::new();
    let poisoner = ArpPoisoner::new(
        PoisonConfig {
            attacker_mac: mac(66),
            variant: PoisonVariant::GratuitousReply,
            victim_ip: ip(1),
            claimed_mac: mac(66),
            target: Some((ip(2), mac(2))),
            start_delay: Duration::from_millis(100),
            repeat: None,
        },
        truth,
    );
    lan.attach(Box::new(poisoner));
    lan.sim.run_until(SimTime::from_secs(2));
    assert_eq!(victim_h.cache.borrow().lookup(lan.sim.now(), ip(1)), None);
    assert_eq!(victim_h.stats.borrow().policy_rejections, 1);
}

/// The reply-race variant defeats even the no-unsolicited kernel policy:
/// the forged reply answers a genuine request.
#[test]
fn reply_race_defeats_no_unsolicited_policy() {
    let mut lan = Lan::new(3);
    // Put the attacker on a *lower* port so tie-broken event ordering
    // favours it — and give the real gateway extra link latency so the
    // race is realistic.
    let truth = GroundTruth::new();
    let poisoner = ArpPoisoner::new(
        PoisonConfig {
            attacker_mac: mac(66),
            variant: PoisonVariant::ReplyToRequestRace,
            victim_ip: ip(1),
            claimed_mac: mac(66),
            target: None,
            start_delay: Duration::ZERO,
            repeat: None,
        },
        truth.clone(),
    );
    lan.attach(Box::new(poisoner));
    // Gateway farther away (higher latency) than the attacker.
    let (gw_host, _gw_h) = Host::new(HostConfig::static_ip("gw", mac(100), ip(1), cidr()));
    let gw_id = lan.sim.add_device(Box::new(gw_host));
    let port = lan.next_port;
    lan.next_port += 1;
    lan.sim.connect(gw_id, PortId(0), lan.switch, PortId(port), Duration::from_millis(2)).unwrap();

    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr())
            .with_policy(ArpPolicy::NoUnsolicited),
    );
    let (ping, _) = PingApp::new(ip(1), Duration::from_millis(500));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));

    lan.sim.run_until(SimTime::from_secs(3));
    let now = lan.sim.now();
    assert_eq!(
        victim_h.cache.borrow().lookup(now, ip(1)),
        Some(mac(66)),
        "forged reply should win the race"
    );
    assert!(truth.len() >= 1);
}

/// Full-duplex MITM: both victims' caches point at the attacker, yet
/// pings keep flowing (covert interception), through the relay.
#[test]
fn mitm_relay_intercepts_while_preserving_connectivity() {
    let mut lan = Lan::new(4);
    let gw_h = lan.add_host(
        HostConfig::static_ip("gw", mac(100), ip(1), cidr()).with_policy(ArpPolicy::Promiscuous),
    );
    let (mut victim, victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::Promiscuous),
    );
    let (ping, ping_stats) = PingApp::new(ip(1), Duration::from_millis(100));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));

    let truth = GroundTruth::new();
    let relay = MitmRelay::new(
        MitmRelayConfig {
            attacker_mac: mac(66),
            side_a: (ip(1), mac(100)),
            side_b: (ip(2), mac(2)),
            start_delay: Duration::from_millis(500),
            repeat: Duration::from_secs(5),
        },
        truth.clone(),
    );
    lan.attach(Box::new(relay));
    lan.sim.run_until(SimTime::from_secs(10));

    let now = lan.sim.now();
    // Both sides poisoned toward the attacker.
    assert_eq!(victim_h.cache.borrow().lookup(now, ip(1)), Some(mac(66)));
    assert_eq!(gw_h.cache.borrow().lookup(now, ip(2)), Some(mac(66)));
    // And yet the ping stream still completes — the covert property.
    let stats = ping_stats.borrow();
    assert!(stats.sent > 50);
    let ratio = stats.received as f64 / stats.sent as f64;
    assert!(ratio > 0.9, "delivery ratio {ratio} too low for a covert MITM");
    // Ground truth shows repeated re-poisoning rounds.
    assert!(truth.len() >= 4);
}

/// Blackhole DoS: victim's traffic to the poisoned IP goes nowhere.
#[test]
fn blackhole_dos_breaks_connectivity() {
    let mut lan = Lan::new(5);
    lan.add_host(HostConfig::static_ip("gw", mac(100), ip(1), cidr()));
    let (mut victim, _victim_h) = Host::new(
        HostConfig::static_ip("victim", mac(2), ip(2), cidr()).with_policy(ArpPolicy::Promiscuous),
    );
    let (ping, ping_stats) = PingApp::new(ip(1), Duration::from_millis(100));
    victim.add_app(Box::new(ping));
    lan.attach(Box::new(victim));
    let truth = GroundTruth::new();
    let poisoner = ArpPoisoner::new(
        PoisonConfig {
            attacker_mac: mac(66),
            variant: PoisonVariant::BlackholeDos,
            victim_ip: ip(1),
            claimed_mac: MacAddr::new([0x02, 0xde, 0xad, 0xbe, 0xef, 0x01]), // nobody
            target: Some((ip(2), mac(2))),
            start_delay: Duration::from_secs(2),
            repeat: Some(Duration::from_secs(2)),
        },
        truth,
    );
    lan.attach(Box::new(poisoner));
    lan.sim.run_until(SimTime::from_secs(12));
    let stats = ping_stats.borrow();
    assert!(stats.sent > 80);
    let lost = stats.sent - stats.received;
    assert!(lost > 30, "expected sustained loss, lost only {lost} of {}", stats.sent);
}

/// DHCP starvation empties the pool so a legitimate latecomer cannot
/// bind; the rogue server then captures it.
#[test]
fn starvation_then_rogue_capture() {
    let mut lan = Lan::new(6);
    let gw_ip = ip(1);
    let server_cfg = DhcpServerConfig {
        pool_start: ip(100),
        pool_size: 6,
        lease: Duration::from_secs(600),
        mask: Ipv4Addr::new(255, 255, 255, 0),
        router: gw_ip,
        offer_hold: Duration::from_secs(10),
    };
    let gw_h = lan.add_host(
        HostConfig::static_ip("gw", mac(100), gw_ip, cidr()).with_dhcp_server(server_cfg),
    );

    let truth = GroundTruth::new();
    let starver = DhcpStarver::new(
        DhcpStarverConfig {
            attacker_mac: mac(66),
            start_delay: Duration::from_millis(100),
            rate_per_sec: 50,
            complete_handshake: true,
            total: Some(40),
        },
        truth.clone(),
    );
    lan.attach(Box::new(starver));

    let rogue = RogueDhcpServer::new(
        RogueDhcpServerConfig {
            attacker_mac: mac(67),
            server_ip: ip(250),
            pool_start: ip(200),
            pool_size: 8,
            evil_gateway: ip(250),
            start_delay: Duration::from_secs(5),
        },
        truth.clone(),
    );
    lan.attach(Box::new(rogue));

    // A legitimate client arrives after the pool is gone.
    let late_client = {
        let cfg =
            DhcpClientConfig { start_delay: Duration::from_secs(6), ..DhcpClientConfig::default() };
        lan.add_host(HostConfig::dhcp("late", mac(7), cfg))
    };

    lan.sim.run_until(SimTime::from_secs(20));

    let server = gw_h.dhcp_server.as_ref().unwrap().borrow();
    assert_eq!(server.by_ip.len(), 6, "pool fully stolen");
    assert!(server.exhaustion_events > 0);
    // The latecomer got an address — from the rogue.
    let info = late_client.dhcp_client.as_ref().unwrap().borrow();
    let (bound, _) = info.bound.expect("victim should have bound to the rogue");
    assert!(bound.to_u32() >= ip(200).to_u32(), "bound {bound} should be from rogue pool");
    assert_eq!(late_client.iface().gateway(), Some(ip(250)), "evil gateway installed");
}
