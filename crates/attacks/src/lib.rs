//! The attacker toolkit: every attack the analysis evaluates, implemented
//! as simulated devices that forge raw frames.
//!
//! The centrepiece is [`ArpPoisoner`], which implements the full catalogue
//! of ARP-cache-poisoning variants the literature distinguishes
//! ([`PoisonVariant`]). Around it sit the follow-on and sibling attacks:
//! a man-in-the-middle relay ([`MitmRelay`]) that keeps intercepted
//! traffic flowing, a CAM-table flooder ([`MacFlooder`]), a DHCP-pool
//! starver ([`DhcpStarver`]), and a rogue DHCP server ([`RogueDhcpServer`]).
//!
//! Every attack reports what it did, and when, into a shared
//! [`GroundTruth`] log so experiments can score detections against what
//! actually happened.
//!
//! # Example
//!
//! ```rust
//! use arpshield_attacks::{ArpPoisoner, PoisonConfig, PoisonVariant, GroundTruth};
//! use arpshield_packet::{Ipv4Addr, MacAddr};
//! use std::time::Duration;
//!
//! let truth = GroundTruth::new();
//! let poisoner = ArpPoisoner::new(
//!     PoisonConfig {
//!         attacker_mac: MacAddr::from_index(66),
//!         variant: PoisonVariant::GratuitousReply,
//!         victim_ip: Ipv4Addr::new(10, 0, 0, 1),      // IP being hijacked
//!         claimed_mac: MacAddr::from_index(66),        // rebound to attacker
//!         target: None,                                // broadcast to all
//!         start_delay: Duration::from_secs(1),
//!         repeat: Some(Duration::from_secs(5)),
//!     },
//!     truth.clone(),
//! );
//! # let _ = poisoner;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dhcp_starve;
mod flood;
mod ground_truth;
mod mitm;
mod poison;
mod rogue_dhcp;
mod scan;

pub use dhcp_starve::{DhcpStarver, DhcpStarverConfig, StarverStats};
pub use flood::{FloodStats, MacFlooder, MacFlooderConfig};
pub use ground_truth::{AttackEvent, AttackKind, GroundTruth};
pub use mitm::{MitmRelay, MitmRelayConfig, MitmStats};
pub use poison::{ArpPoisoner, PoisonConfig, PoisonVariant};
pub use rogue_dhcp::{RogueDhcpServer, RogueDhcpServerConfig, RogueStats};
pub use scan::{ArpScanner, ArpScannerConfig, ScanStats};
