//! The rogue DHCP server: the follow-on attack after starvation.
//!
//! Once the legitimate server's pool is exhausted, the attacker answers
//! DISCOVERs itself, handing out addresses whose default gateway (and
//! DNS) point at the attacker — a poisoning-free way to become the man
//! in the middle.

use std::time::Duration;

use arpshield_netsim::{eth_frame, Device, DeviceCtx, PortId};
use arpshield_packet::{
    DhcpMessage, DhcpMessageType, EtherType, EthernetFrame, IpProtocol, Ipv4Addr, Ipv4Emit,
    Ipv4Packet, MacAddr, UdpDatagram, UdpEmit, DHCP_CLIENT_PORT, DHCP_SERVER_PORT,
};

use crate::ground_truth::{AttackEvent, AttackKind, GroundTruth};

/// Rogue server parameters.
#[derive(Debug, Clone, Copy)]
pub struct RogueDhcpServerConfig {
    /// Attacker hardware address (the rogue server answers from it).
    pub attacker_mac: MacAddr,
    /// IP the rogue server claims for itself.
    pub server_ip: Ipv4Addr,
    /// First address of the rogue pool.
    pub pool_start: Ipv4Addr,
    /// Rogue pool size.
    pub pool_size: u32,
    /// The malicious default gateway handed to victims (typically the
    /// attacker itself).
    pub evil_gateway: Ipv4Addr,
    /// Activation delay — rogue servers typically wait until the real
    /// server is starved so their offers win.
    pub start_delay: Duration,
}

/// Rogue server statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RogueStats {
    /// Forged OFFERs sent.
    pub offers_sent: u64,
    /// Forged ACKs sent (victims captured).
    pub victims_captured: u64,
}

/// A rogue DHCP server device.
#[derive(Debug)]
pub struct RogueDhcpServer {
    config: RogueDhcpServerConfig,
    truth: GroundTruth,
    active: bool,
    next_ip: u32,
    /// Live counters.
    pub stats: RogueStats,
}

const TICK_ACTIVATE: u64 = 1;

impl RogueDhcpServer {
    /// Creates a rogue server reporting into `truth`.
    pub fn new(config: RogueDhcpServerConfig, truth: GroundTruth) -> Self {
        RogueDhcpServer { config, truth, active: false, next_ip: 0, stats: RogueStats::default() }
    }

    fn reply(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        kind: DhcpMessageType,
        client: &DhcpMessage,
        yiaddr: Ipv4Addr,
    ) {
        let msg = DhcpMessage::reply(
            kind,
            client,
            yiaddr,
            self.config.server_ip,
            3600,
            Ipv4Addr::new(255, 255, 255, 0),
            self.config.evil_gateway,
        );
        let dgram = UdpEmit::new(
            DHCP_SERVER_PORT,
            DHCP_CLIENT_PORT,
            self.config.server_ip,
            Ipv4Addr::BROADCAST,
            &msg,
        );
        let pkt =
            Ipv4Emit::new(self.config.server_ip, Ipv4Addr::BROADCAST, IpProtocol::Udp, &dgram);
        ctx.send(
            PortId(0),
            eth_frame(client.chaddr, self.config.attacker_mac, EtherType::Ipv4, &pkt),
        );
        self.truth.record(AttackEvent {
            at: ctx.now(),
            attacker: self.config.attacker_mac,
            kind: AttackKind::RogueDhcp,
            forged_ip: Some(yiaddr),
            claimed_mac: Some(client.chaddr),
        });
    }
}

impl Device for RogueDhcpServer {
    fn name(&self) -> &str {
        "rogue-dhcp"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.config.start_delay, TICK_ACTIVATE);
    }

    fn on_timer(&mut self, _ctx: &mut DeviceCtx<'_>, token: u64) {
        if token == TICK_ACTIVATE {
            self.active = true;
        }
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        if !self.active {
            return;
        }
        let Ok(eth) = EthernetFrame::parse(frame) else {
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(pkt) = Ipv4Packet::parse(&eth.payload) else {
            return;
        };
        if pkt.protocol != IpProtocol::Udp {
            return;
        }
        let Ok(dgram) = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst) else {
            return;
        };
        if dgram.dst_port != DHCP_SERVER_PORT {
            return; // only client->server traffic interests us
        }
        let Ok(msg) = DhcpMessage::parse(&dgram.payload) else {
            return;
        };
        // Ignore our own accomplice's forged clients (starver tag 06:66).
        if msg.chaddr.octets()[0] == 0x06 && msg.chaddr.octets()[1] == 0x66 {
            return;
        }
        match msg.message_type() {
            Some(DhcpMessageType::Discover) => {
                if self.next_ip < self.config.pool_size {
                    let ip = Ipv4Addr::from_u32(self.config.pool_start.to_u32() + self.next_ip);
                    self.next_ip += 1;
                    self.stats.offers_sent += 1;
                    self.reply(ctx, DhcpMessageType::Offer, &msg, ip);
                }
            }
            Some(DhcpMessageType::Request) => {
                // Ack any request naming us as the server.
                if msg.server_id() == Some(self.config.server_ip) {
                    let ip = msg.requested_ip().unwrap_or(msg.ciaddr);
                    self.stats.victims_captured += 1;
                    self.reply(ctx, DhcpMessageType::Ack, &msg, ip);
                }
            }
            _ => {}
        }
    }
}

// End-to-end capture behaviour (victim binds to the evil gateway) is
// exercised in the crate integration tests.
