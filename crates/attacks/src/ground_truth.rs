//! Ground truth: the attacker's own log of what it perpetrated and when,
//! used to score detections.

use std::cell::RefCell;
use std::rc::Rc;

use arpshield_netsim::SimTime;
use arpshield_packet::{Ipv4Addr, MacAddr};

use crate::poison::PoisonVariant;

/// What category of attack an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// An ARP-cache-poisoning emission.
    ArpPoison(PoisonVariant),
    /// A burst of CAM-flooding frames.
    MacFlood {
        /// Frames in the burst.
        frames: u32,
    },
    /// A forged DHCP DISCOVER (starvation).
    DhcpStarvation,
    /// A rogue DHCP OFFER/ACK.
    RogueDhcp,
    /// One probe of an ARP reconnaissance sweep.
    ArpScan,
}

/// One attacker action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackEvent {
    /// When the frames left the attacker.
    pub at: SimTime,
    /// The attacker's real hardware address.
    pub attacker: MacAddr,
    /// Category.
    pub kind: AttackKind,
    /// For poisoning: the IP whose binding was forged.
    pub forged_ip: Option<Ipv4Addr>,
    /// For poisoning: the MAC the forged binding points at.
    pub claimed_mac: Option<MacAddr>,
}

/// Shared, append-only log of attacker actions.
///
/// Cloning is cheap (reference-counted); every attack device and the
/// experiment harness hold the same log.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    events: Rc<RefCell<Vec<AttackEvent>>>,
}

impl GroundTruth {
    /// Creates an empty log.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Appends an event.
    pub fn record(&self, event: AttackEvent) {
        self.events.borrow_mut().push(event);
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<AttackEvent> {
        self.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when no attack has acted yet.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Time of the first event matching `pred`, if any — the reference
    /// point for detection-latency measurements.
    pub fn first_time(&self, pred: impl Fn(&AttackEvent) -> bool) -> Option<SimTime> {
        self.events.borrow().iter().find(|e| pred(e)).map(|e| e.at)
    }

    /// Time of the first ARP-poisoning event, if any.
    pub fn first_poison_at(&self) -> Option<SimTime> {
        self.first_time(|e| matches!(e.kind, AttackKind::ArpPoison(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(at_ms: u64) -> AttackEvent {
        AttackEvent {
            at: SimTime::from_millis(at_ms),
            attacker: MacAddr::from_index(66),
            kind: AttackKind::ArpPoison(PoisonVariant::GratuitousReply),
            forged_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
            claimed_mac: Some(MacAddr::from_index(66)),
        }
    }

    #[test]
    fn log_is_shared_across_clones() {
        let truth = GroundTruth::new();
        let clone = truth.clone();
        assert!(truth.is_empty());
        clone.record(event(100));
        assert_eq!(truth.len(), 1);
        assert_eq!(truth.first_poison_at(), Some(SimTime::from_millis(100)));
    }

    #[test]
    fn first_time_filters() {
        let truth = GroundTruth::new();
        truth.record(AttackEvent {
            at: SimTime::from_millis(5),
            attacker: MacAddr::from_index(1),
            kind: AttackKind::MacFlood { frames: 100 },
            forged_ip: None,
            claimed_mac: None,
        });
        truth.record(event(10));
        assert_eq!(truth.first_poison_at(), Some(SimTime::from_millis(10)));
        assert_eq!(
            truth.first_time(|e| matches!(e.kind, AttackKind::MacFlood { .. })),
            Some(SimTime::from_millis(5))
        );
        assert_eq!(truth.first_time(|e| matches!(e.kind, AttackKind::RogueDhcp)), None);
    }
}
