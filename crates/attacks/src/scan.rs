//! ARP scanning: the reconnaissance sweep that precedes targeted
//! poisoning.
//!
//! Before an attacker can choose a victim it enumerates the segment —
//! `arp-scan`-style — by requesting every address in the subnet. The
//! sweep is not itself an integrity attack, but its rate signature is
//! detectable (the rate monitor's third counter) and the paper's class
//! of analysis treats reconnaissance visibility as part of a scheme's
//! coverage story.

use std::time::Duration;

use arpshield_netsim::{eth_frame, Device, DeviceCtx, PortId};
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, Ipv4Cidr, MacAddr};

use crate::ground_truth::{AttackEvent, AttackKind, GroundTruth};

/// Scanner parameters.
#[derive(Debug, Clone, Copy)]
pub struct ArpScannerConfig {
    /// The scanner's hardware address.
    pub attacker_mac: MacAddr,
    /// A source IP to claim in the requests (scanners often use their
    /// real one; `0.0.0.0` turns the sweep into quiet RFC 5227 probes
    /// that never pollute caches — and never trip request counters
    /// keyed on binding-carrying requests).
    pub source_ip: Ipv4Addr,
    /// The subnet to sweep.
    pub subnet: Ipv4Cidr,
    /// Requests per second.
    pub rate_per_sec: u32,
    /// Delay before the sweep starts.
    pub start_delay: Duration,
}

/// Scan results.
#[derive(Debug, Default, Clone)]
pub struct ScanStats {
    /// Requests transmitted.
    pub requests_sent: u64,
    /// Stations discovered (distinct repliers).
    pub discovered: Vec<(Ipv4Addr, MacAddr)>,
}

/// An `arp-scan`-style subnet sweeper.
#[derive(Debug)]
pub struct ArpScanner {
    config: ArpScannerConfig,
    truth: GroundTruth,
    next_host: u32,
    /// Live results.
    pub stats: ScanStats,
}

const TICK: u64 = 1;

impl ArpScanner {
    /// Creates a scanner reporting into `truth`.
    pub fn new(config: ArpScannerConfig, truth: GroundTruth) -> Self {
        ArpScanner { config, truth, next_host: 1, stats: ScanStats::default() }
    }

    /// True when the sweep has covered the whole subnet.
    pub fn finished(&self) -> bool {
        self.config.subnet.host(self.next_host).is_none()
    }
}

impl Device for ArpScanner {
    fn name(&self) -> &str {
        "arp-scanner"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.config.start_delay, TICK);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token != TICK {
            return;
        }
        let Some(target) = self.config.subnet.host(self.next_host) else {
            return; // sweep complete
        };
        self.next_host += 1;
        let request = ArpPacket::request(self.config.attacker_mac, self.config.source_ip, target);
        ctx.send(
            PortId(0),
            eth_frame(MacAddr::BROADCAST, self.config.attacker_mac, EtherType::ARP, &request),
        );
        self.stats.requests_sent += 1;
        self.truth.record(AttackEvent {
            at: ctx.now(),
            attacker: self.config.attacker_mac,
            kind: AttackKind::ArpScan,
            forged_ip: None,
            claimed_mac: None,
        });
        let gap = Duration::from_nanos(1_000_000_000 / u64::from(self.config.rate_per_sec.max(1)));
        ctx.schedule_in(gap, TICK);
    }

    fn on_frame(&mut self, _ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        let Ok(eth) = EthernetFrame::parse(frame) else {
            return;
        };
        if eth.ethertype != EtherType::ARP || eth.dst != self.config.attacker_mac {
            return;
        }
        let Ok(arp) = ArpPacket::parse(&eth.payload) else {
            return;
        };
        if arp.op == ArpOp::Reply
            && !self.stats.discovered.iter().any(|(ip, _)| *ip == arp.sender_ip)
        {
            self.stats.discovered.push((arp.sender_ip, arp.sender_mac));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_subnet_in_order() {
        let mut s = ArpScanner::new(
            ArpScannerConfig {
                attacker_mac: MacAddr::from_index(66),
                source_ip: Ipv4Addr::new(10, 0, 0, 66),
                subnet: Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 29), // 6 hosts
                rate_per_sec: 100,
                start_delay: Duration::ZERO,
            },
            GroundTruth::new(),
        );
        assert!(!s.finished());
        s.next_host = 7; // past .6, the last usable host in a /29
        assert!(s.finished());
    }
}
