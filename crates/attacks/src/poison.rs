//! The ARP cache poisoner and its attack-variant catalogue.

use std::time::Duration;

use arpshield_netsim::{eth_frame, Device, DeviceCtx, PortId};
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, MacAddr};

use crate::ground_truth::{AttackEvent, AttackKind, GroundTruth};

/// The ways an attacker can deliver a forged `sender_ip is-at sender_mac`
/// claim. Which ones succeed depends on the victim's
/// [`ArpPolicy`](arpshield_host::ArpPolicy) — that cross product is the
/// susceptibility matrix (experiment T2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoisonVariant {
    /// Broadcast an unsolicited ARP *reply* claiming the victim IP
    /// (classic `arpspoof`). Updates existing entries under permissive
    /// policies; creates entries under fully promiscuous ones.
    GratuitousReply,
    /// Broadcast a gratuitous ARP *request* (`sender_ip == target_ip`)
    /// with the forged binding. Many stacks treat requests more
    /// trustingly than replies.
    GratuitousRequest,
    /// Send the forged reply *unicast* to one target host — quieter on
    /// the wire, invisible to other stations (but not to a mirror-port
    /// monitor).
    UnicastReply,
    /// Send a forged *request* unicast to the target, asking for the
    /// target's own IP with forged sender fields. Because the request is
    /// addressed to the target, even `Standard`-policy stacks create an
    /// entry for the forged sender before answering.
    UnicastRequestProbeStuffing,
    /// Lurk until the target broadcasts a genuine request for the victim
    /// IP, then race the real owner's reply with a forged one. This is
    /// the variant that defeats "ignore unsolicited replies" kernels: the
    /// reply *is* solicited.
    ReplyToRequestRace,
    /// Blackhole denial of service: bind the victim IP to a nonexistent
    /// MAC so the target's traffic to it goes nowhere.
    BlackholeDos,
}

impl PoisonVariant {
    /// All variants, for matrix experiments.
    pub fn all() -> [PoisonVariant; 6] {
        [
            PoisonVariant::GratuitousReply,
            PoisonVariant::GratuitousRequest,
            PoisonVariant::UnicastReply,
            PoisonVariant::UnicastRequestProbeStuffing,
            PoisonVariant::ReplyToRequestRace,
            PoisonVariant::BlackholeDos,
        ]
    }

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            PoisonVariant::GratuitousReply => "gratuitous-reply",
            PoisonVariant::GratuitousRequest => "gratuitous-request",
            PoisonVariant::UnicastReply => "unicast-reply",
            PoisonVariant::UnicastRequestProbeStuffing => "unicast-request",
            PoisonVariant::ReplyToRequestRace => "reply-race",
            PoisonVariant::BlackholeDos => "blackhole-dos",
        }
    }
}

impl std::fmt::Display for PoisonVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Poisoner parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoisonConfig {
    /// The attacker NIC's real address (frames are sourced from it).
    pub attacker_mac: MacAddr,
    /// Delivery variant.
    pub variant: PoisonVariant,
    /// The IP whose binding is forged (e.g. the gateway's).
    pub victim_ip: Ipv4Addr,
    /// The MAC the forged binding claims (the attacker's for MITM, a
    /// bogus one for [`PoisonVariant::BlackholeDos`]).
    pub claimed_mac: MacAddr,
    /// For unicast variants: the host being poisoned `(ip, mac)`. `None`
    /// broadcasts to the whole segment.
    pub target: Option<(Ipv4Addr, MacAddr)>,
    /// Delay before the first emission.
    pub start_delay: Duration,
    /// Re-poison interval (defeats cache timeouts). `None` = one shot.
    pub repeat: Option<Duration>,
}

/// The attacking device.
///
/// One poisoner executes one configured variant; experiments instantiate
/// one per matrix cell.
#[derive(Debug)]
pub struct ArpPoisoner {
    config: PoisonConfig,
    truth: GroundTruth,
    /// Forged frames emitted.
    pub emissions: u64,
    /// For the race variant: requesters awaiting the delayed second
    /// tap, in scheduling order.
    race_targets: std::collections::VecDeque<(MacAddr, Ipv4Addr)>,
}

const TICK: u64 = 1;
const TICK_RACE_SECOND_TAP: u64 = 2;
/// Delay of the race variant's second forged reply — late enough to land
/// *after* the legitimate owner's answer, so it also wins against
/// last-write-wins (promiscuous/standard) caches.
const RACE_SECOND_TAP_DELAY: Duration = Duration::from_millis(30);

impl ArpPoisoner {
    /// Creates a poisoner reporting into `truth`.
    pub fn new(config: PoisonConfig, truth: GroundTruth) -> Self {
        ArpPoisoner { config, truth, emissions: 0, race_targets: std::collections::VecDeque::new() }
    }

    fn forged_packet(&self) -> ArpPacket {
        let c = &self.config;
        match c.variant {
            // A broadcast gratuitous reply is addressed to nobody in
            // particular — that is exactly why `Standard`-policy stacks only
            // *update* (never create) from it.
            PoisonVariant::GratuitousReply => ArpPacket {
                op: ArpOp::Reply,
                sender_mac: c.claimed_mac,
                sender_ip: c.victim_ip,
                target_mac: MacAddr::BROADCAST,
                target_ip: c.victim_ip,
            },
            PoisonVariant::UnicastReply | PoisonVariant::BlackholeDos => ArpPacket {
                op: ArpOp::Reply,
                sender_mac: c.claimed_mac,
                sender_ip: c.victim_ip,
                target_mac: c.target.map(|(_, m)| m).unwrap_or(MacAddr::BROADCAST),
                target_ip: c.target.map(|(ip, _)| ip).unwrap_or(c.victim_ip),
            },
            PoisonVariant::GratuitousRequest => {
                ArpPacket::gratuitous(ArpOp::Request, c.claimed_mac, c.victim_ip)
            }
            PoisonVariant::UnicastRequestProbeStuffing => ArpPacket {
                op: ArpOp::Request,
                sender_mac: c.claimed_mac,
                sender_ip: c.victim_ip,
                target_mac: MacAddr::ZERO,
                target_ip: c.target.map(|(ip, _)| ip).unwrap_or(c.victim_ip),
            },
            // The race variant emits nothing proactively; see `on_frame`.
            PoisonVariant::ReplyToRequestRace => ArpPacket {
                op: ArpOp::Reply,
                sender_mac: c.claimed_mac,
                sender_ip: c.victim_ip,
                target_mac: MacAddr::BROADCAST,
                target_ip: c.victim_ip,
            },
        }
    }

    fn frame_dst(&self) -> MacAddr {
        match self.config.variant {
            PoisonVariant::UnicastReply | PoisonVariant::UnicastRequestProbeStuffing => {
                self.config.target.map(|(_, m)| m).unwrap_or(MacAddr::BROADCAST)
            }
            _ => MacAddr::BROADCAST,
        }
    }

    fn emit(&mut self, ctx: &mut DeviceCtx<'_>, packet: ArpPacket, dst: MacAddr) {
        ctx.send(PortId(0), eth_frame(dst, self.config.attacker_mac, EtherType::ARP, &packet));
        self.emissions += 1;
        self.truth.record(AttackEvent {
            at: ctx.now(),
            attacker: self.config.attacker_mac,
            kind: AttackKind::ArpPoison(self.config.variant),
            forged_ip: Some(self.config.victim_ip),
            claimed_mac: Some(self.config.claimed_mac),
        });
    }
}

impl Device for ArpPoisoner {
    fn name(&self) -> &str {
        "arp-poisoner"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        if self.config.variant != PoisonVariant::ReplyToRequestRace {
            ctx.schedule_in(self.config.start_delay, TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match token {
            TICK => {
                let packet = self.forged_packet();
                let dst = self.frame_dst();
                self.emit(ctx, packet, dst);
                if let Some(repeat) = self.config.repeat {
                    ctx.schedule_in(repeat, TICK);
                }
            }
            TICK_RACE_SECOND_TAP => {
                if let Some((req_mac, req_ip)) = self.race_targets.pop_front() {
                    let forged = ArpPacket {
                        op: ArpOp::Reply,
                        sender_mac: self.config.claimed_mac,
                        sender_ip: self.config.victim_ip,
                        target_mac: req_mac,
                        target_ip: req_ip,
                    };
                    self.emit(ctx, forged, req_mac);
                }
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        if self.config.variant != PoisonVariant::ReplyToRequestRace {
            return;
        }
        let Ok(eth) = EthernetFrame::parse(frame) else {
            return;
        };
        if eth.ethertype != EtherType::ARP {
            return;
        }
        let Ok(arp) = ArpPacket::parse(&eth.payload) else {
            return;
        };
        // A genuine broadcast request for the victim IP from someone else:
        // race the legitimate owner's reply.
        if arp.op == ArpOp::Request
            && arp.target_ip == self.config.victim_ip
            && arp.sender_mac != self.config.attacker_mac
            && !arp.sender_ip.is_unspecified()
        {
            let forged = ArpPacket {
                op: ArpOp::Reply,
                sender_mac: self.config.claimed_mac,
                sender_ip: self.config.victim_ip,
                target_mac: arp.sender_mac,
                target_ip: arp.sender_ip,
            };
            self.emit(ctx, forged, arp.sender_mac);
            // Second tap after the legitimate owner has answered, to win
            // against last-write-wins caches too.
            self.race_targets.push_back((arp.sender_mac, arp.sender_ip));
            ctx.schedule_in(RACE_SECOND_TAP_DELAY, TICK_RACE_SECOND_TAP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(variant: PoisonVariant) -> PoisonConfig {
        PoisonConfig {
            attacker_mac: MacAddr::from_index(66),
            variant,
            victim_ip: Ipv4Addr::new(10, 0, 0, 1),
            claimed_mac: MacAddr::from_index(66),
            target: Some((Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_index(2))),
            start_delay: Duration::from_millis(10),
            repeat: None,
        }
    }

    #[test]
    fn forged_packets_have_expected_shape() {
        let p = ArpPoisoner::new(config(PoisonVariant::GratuitousReply), GroundTruth::new());
        let pkt = p.forged_packet();
        assert_eq!(pkt.op, ArpOp::Reply);
        assert_eq!(pkt.sender_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(pkt.sender_mac, MacAddr::from_index(66));

        let p = ArpPoisoner::new(config(PoisonVariant::GratuitousRequest), GroundTruth::new());
        let pkt = p.forged_packet();
        assert_eq!(pkt.op, ArpOp::Request);
        assert!(pkt.is_gratuitous());

        let p = ArpPoisoner::new(
            config(PoisonVariant::UnicastRequestProbeStuffing),
            GroundTruth::new(),
        );
        let pkt = p.forged_packet();
        assert_eq!(pkt.op, ArpOp::Request);
        assert_eq!(pkt.target_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(pkt.sender_ip, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn unicast_variants_address_the_target() {
        let p = ArpPoisoner::new(config(PoisonVariant::UnicastReply), GroundTruth::new());
        assert_eq!(p.frame_dst(), MacAddr::from_index(2));
        let p = ArpPoisoner::new(config(PoisonVariant::GratuitousReply), GroundTruth::new());
        assert_eq!(p.frame_dst(), MacAddr::BROADCAST);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            PoisonVariant::all().iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), PoisonVariant::all().len());
    }

    // End-to-end poisoning behaviour (against real Host policies) is
    // covered in this crate's integration tests and in experiment T2.
}
