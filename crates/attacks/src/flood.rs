//! CAM-table flooding (`macof`-style).

use std::time::Duration;

use arpshield_netsim::{eth_frame, Device, DeviceCtx, PortId};
use arpshield_packet::{EtherType, IpProtocol, Ipv4Addr, Ipv4Emit, MacAddr};

use crate::ground_truth::{AttackEvent, AttackKind, GroundTruth};

/// Flooder parameters.
#[derive(Debug, Clone, Copy)]
pub struct MacFlooderConfig {
    /// The attacker's real address (used only for bookkeeping; flood
    /// frames carry random sources, as `macof` does).
    pub attacker_mac: MacAddr,
    /// Delay before flooding starts.
    pub start_delay: Duration,
    /// Frames per burst.
    pub burst: u32,
    /// Interval between bursts.
    pub interval: Duration,
    /// Total frames to send (`None` = until the run ends).
    pub total: Option<u64>,
}

impl MacFlooderConfig {
    /// Roughly `macof`'s observed rate (~155 000 frames/minute) in
    /// 100-frame bursts.
    pub fn macof_rate(attacker_mac: MacAddr) -> Self {
        MacFlooderConfig {
            attacker_mac,
            start_delay: Duration::from_millis(100),
            burst: 100,
            interval: Duration::from_millis(39),
            total: None,
        }
    }
}

/// Flood statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FloodStats {
    /// Frames emitted.
    pub frames_sent: u64,
    /// Bursts emitted.
    pub bursts: u64,
}

/// Fills a switch's CAM table with random source addresses until it
/// fail-opens into hub behaviour.
#[derive(Debug)]
pub struct MacFlooder {
    config: MacFlooderConfig,
    truth: GroundTruth,
    /// Live counters.
    pub stats: FloodStats,
}

const TICK: u64 = 1;

impl MacFlooder {
    /// Creates a flooder reporting into `truth`.
    pub fn new(config: MacFlooderConfig, truth: GroundTruth) -> Self {
        MacFlooder { config, truth, stats: FloodStats::default() }
    }

    fn random_mac(ctx: &mut DeviceCtx<'_>) -> MacAddr {
        let r = ctx.rng().next_u64().to_be_bytes();
        // Force unicast + locally administered, like macof.
        MacAddr::new([r[0] & 0xfe | 0x02, r[1], r[2], r[3], r[4], r[5]])
    }
}

impl Device for MacFlooder {
    fn name(&self) -> &str {
        "mac-flooder"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.config.start_delay, TICK);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token != TICK {
            return;
        }
        let mut sent_this_burst = 0u32;
        for _ in 0..self.config.burst {
            if let Some(total) = self.config.total {
                if self.stats.frames_sent >= total {
                    break;
                }
            }
            let src = Self::random_mac(ctx);
            let dst = Self::random_mac(ctx);
            // macof sends small bogus IPv4/TCP packets; the payload content
            // is irrelevant, the random *source MAC* does the damage.
            let r = ctx.rng().next_u64();
            let pkt = Ipv4Emit::new(
                Ipv4Addr::from_u32((r >> 32) as u32),
                Ipv4Addr::from_u32(r as u32),
                IpProtocol::Tcp,
                [0u8; 20].as_slice(),
            );
            ctx.send(PortId(0), eth_frame(dst, src, EtherType::Ipv4, &pkt));
            self.stats.frames_sent += 1;
            sent_this_burst += 1;
        }
        if sent_this_burst > 0 {
            self.stats.bursts += 1;
            self.truth.record(AttackEvent {
                at: ctx.now(),
                attacker: self.config.attacker_mac,
                kind: AttackKind::MacFlood { frames: sent_this_burst },
                forged_ip: None,
                claimed_mac: None,
            });
            ctx.schedule_in(self.config.interval, TICK);
        }
    }

    fn on_frame(&mut self, _ctx: &mut DeviceCtx<'_>, _port: PortId, _frame: &[u8]) {
        // After fail-open the flooder would sniff here; the eavesdropping
        // payoff is measured by the monitor devices, not the attacker.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arpshield_netsim::{SimTime, Simulator, Switch, SwitchConfig};
    use arpshield_packet::EthernetFrame;

    #[test]
    fn flood_fills_cam_and_respects_total() {
        let mut sim = Simulator::new(9);
        let (sw, handle) =
            Switch::new("sw", SwitchConfig { ports: 4, cam_capacity: 64, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let truth = GroundTruth::new();
        let flooder = MacFlooder::new(
            MacFlooderConfig {
                attacker_mac: MacAddr::from_index(66),
                start_delay: Duration::from_millis(1),
                burst: 50,
                interval: Duration::from_millis(10),
                total: Some(200),
            },
            truth.clone(),
        );
        let f = sim.add_device(Box::new(flooder));
        sim.connect(f, PortId(0), sw, PortId(0), Duration::from_micros(1)).unwrap();
        sim.run_until(SimTime::from_secs(2));
        assert!(handle.cam.borrow().is_full());
        assert_eq!(handle.cam.borrow().occupancy(), 64);
        assert!(handle.stats.borrow().cam_full_events >= 100);
        // Ground truth recorded bursts.
        assert!(truth.len() >= 4);
        assert!(truth.events().iter().all(|e| matches!(e.kind, AttackKind::MacFlood { .. })));
    }

    #[test]
    fn random_macs_are_unicast() {
        let mut sim = Simulator::new(1);
        struct Probe;
        impl Device for Probe {
            fn name(&self) -> &str {
                "p"
            }
            fn port_count(&self) -> usize {
                0
            }
            fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
        }
        sim.add_device(Box::new(Probe));
        // Exercise the generator through a context.
        // (Indirect: run a flooder and inspect trace sources.)
        let (sw, _) = Switch::new("sw", SwitchConfig { ports: 2, ..Default::default() });
        let sw = sim.add_device(Box::new(sw));
        let f = sim.add_device(Box::new(MacFlooder::new(
            MacFlooderConfig {
                attacker_mac: MacAddr::from_index(1),
                start_delay: Duration::from_millis(1),
                burst: 32,
                interval: Duration::from_millis(5),
                total: Some(32),
            },
            GroundTruth::new(),
        )));
        sim.connect(f, PortId(0), sw, PortId(0), Duration::from_micros(1)).unwrap();
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(1));
        let trace = sim.trace().unwrap();
        assert!(!trace.is_empty());
        for frame in trace.frames() {
            let eth = EthernetFrame::parse(&frame.bytes).unwrap();
            assert!(eth.src.is_unicast());
            assert!(eth.src.is_locally_administered());
        }
    }
}
