//! DHCP starvation (`yersinia`-style pool exhaustion).

use std::time::Duration;

use arpshield_netsim::{eth_frame, Device, DeviceCtx, PortId};
use arpshield_packet::{
    DhcpMessage, DhcpMessageType, EtherType, EthernetFrame, IpProtocol, Ipv4Addr, Ipv4Emit,
    Ipv4Packet, MacAddr, UdpDatagram, UdpEmit, DHCP_CLIENT_PORT, DHCP_SERVER_PORT,
};

use crate::ground_truth::{AttackEvent, AttackKind, GroundTruth};

/// Starver parameters.
#[derive(Debug, Clone, Copy)]
pub struct DhcpStarverConfig {
    /// The attacker's real address (bookkeeping; discovers carry random
    /// forged `chaddr`s).
    pub attacker_mac: MacAddr,
    /// Delay before the attack starts.
    pub start_delay: Duration,
    /// Forged DISCOVERs per second.
    pub rate_per_sec: u32,
    /// Whether to complete the handshake (REQUEST each OFFER), which
    /// pins leases rather than just transient offers — the stronger form
    /// of the attack.
    pub complete_handshake: bool,
    /// Total discovers to send (`None` = unbounded).
    pub total: Option<u64>,
}

/// Starvation statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StarverStats {
    /// Forged DISCOVERs sent.
    pub discovers_sent: u64,
    /// OFFERs captured.
    pub offers_seen: u64,
    /// REQUESTs sent to pin offers into leases.
    pub requests_sent: u64,
    /// ACKs observed (leases successfully stolen).
    pub leases_stolen: u64,
}

/// Exhausts a DHCP pool with forged client hardware addresses.
#[derive(Debug)]
pub struct DhcpStarver {
    config: DhcpStarverConfig,
    truth: GroundTruth,
    next_forged: u32,
    /// Live counters.
    pub stats: StarverStats,
}

const TICK: u64 = 1;

impl DhcpStarver {
    /// Creates a starver reporting into `truth`.
    pub fn new(config: DhcpStarverConfig, truth: GroundTruth) -> Self {
        DhcpStarver { config, truth, next_forged: 0, stats: StarverStats::default() }
    }

    /// The forged `chaddr` space is disjoint from `MacAddr::from_index`
    /// (which generates `02:00:…`), so experiments can tell forged
    /// clients from real ones.
    fn forged_mac(&mut self) -> MacAddr {
        let n = self.next_forged;
        self.next_forged += 1;
        let b = n.to_be_bytes();
        MacAddr::new([0x06, 0x66, b[0], b[1], b[2], b[3]])
    }

    fn send_dhcp(&mut self, ctx: &mut DeviceCtx<'_>, src_mac: MacAddr, msg: &DhcpMessage) {
        let dgram = UdpEmit::new(
            DHCP_CLIENT_PORT,
            DHCP_SERVER_PORT,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::BROADCAST,
            msg,
        );
        let pkt =
            Ipv4Emit::new(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST, IpProtocol::Udp, &dgram);
        ctx.send(PortId(0), eth_frame(MacAddr::BROADCAST, src_mac, EtherType::Ipv4, &pkt));
    }
}

impl Device for DhcpStarver {
    fn name(&self) -> &str {
        "dhcp-starver"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.config.start_delay, TICK);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token != TICK {
            return;
        }
        if let Some(total) = self.config.total {
            if self.stats.discovers_sent >= total {
                return;
            }
        }
        let chaddr = self.forged_mac();
        let xid = ctx.rng().next_u32();
        let discover = DhcpMessage::discover(xid, chaddr);
        // The forged client's MAC is also used at L2 so switch-level
        // defences (port security) see the multiplicity.
        self.send_dhcp(ctx, chaddr, &discover);
        self.stats.discovers_sent += 1;
        self.truth.record(AttackEvent {
            at: ctx.now(),
            attacker: self.config.attacker_mac,
            kind: AttackKind::DhcpStarvation,
            forged_ip: None,
            claimed_mac: Some(chaddr),
        });
        let gap = Duration::from_nanos(1_000_000_000 / u64::from(self.config.rate_per_sec.max(1)));
        ctx.schedule_in(gap, TICK);
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        if !self.config.complete_handshake {
            return;
        }
        // Capture OFFERs addressed to any of our forged clients and pin
        // them with a REQUEST.
        let Ok(eth) = EthernetFrame::parse(frame) else {
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(pkt) = Ipv4Packet::parse(&eth.payload) else {
            return;
        };
        if pkt.protocol != IpProtocol::Udp {
            return;
        }
        let Ok(dgram) = UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst) else {
            return;
        };
        if dgram.dst_port != DHCP_CLIENT_PORT {
            return;
        }
        let Ok(msg) = DhcpMessage::parse(&dgram.payload) else {
            return;
        };
        let forged = msg.chaddr.octets()[0] == 0x06 && msg.chaddr.octets()[1] == 0x66;
        if !forged {
            return;
        }
        match msg.message_type() {
            Some(DhcpMessageType::Offer) => {
                self.stats.offers_seen += 1;
                if let Some(server) = msg.server_id() {
                    let request = DhcpMessage::request(msg.xid, msg.chaddr, msg.yiaddr, server);
                    self.send_dhcp(ctx, msg.chaddr, &request);
                    self.stats.requests_sent += 1;
                }
            }
            Some(DhcpMessageType::Ack) => {
                self.stats.leases_stolen += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forged_macs_are_distinct_and_tagged() {
        let mut s = DhcpStarver::new(
            DhcpStarverConfig {
                attacker_mac: MacAddr::from_index(66),
                start_delay: Duration::ZERO,
                rate_per_sec: 100,
                complete_handshake: true,
                total: None,
            },
            GroundTruth::new(),
        );
        let a = s.forged_mac();
        let b = s.forged_mac();
        assert_ne!(a, b);
        assert_eq!(a.octets()[0], 0x06);
        assert_eq!(a.octets()[1], 0x66);
        assert!(a.is_unicast());
    }

    // Pool-exhaustion end-to-end behaviour is exercised in the crate
    // integration tests against a real DHCP server host.
}
