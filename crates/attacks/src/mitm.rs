//! The man-in-the-middle relay: the payoff attack ARP poisoning enables.

use std::time::Duration;

use arpshield_netsim::{eth_frame, Device, DeviceCtx, PortId};
use arpshield_packet::{
    ArpOp, ArpPacket, EtherType, EthernetFrame, IpProtocol, Ipv4Addr, Ipv4Packet, MacAddr,
};

use crate::ground_truth::{AttackEvent, AttackKind, GroundTruth};
use crate::poison::PoisonVariant;

/// Relay parameters: intercept the conversation between two stations
/// (classically a host and its gateway).
#[derive(Debug, Clone, Copy)]
pub struct MitmRelayConfig {
    /// Attacker hardware address.
    pub attacker_mac: MacAddr,
    /// First endpoint (`ip`, real `mac`).
    pub side_a: (Ipv4Addr, MacAddr),
    /// Second endpoint (`ip`, real `mac`).
    pub side_b: (Ipv4Addr, MacAddr),
    /// Delay before the first poisoning round.
    pub start_delay: Duration,
    /// Re-poisoning interval (must be shorter than the victims' ARP
    /// timeout to keep the intercept alive).
    pub repeat: Duration,
}

/// Intercept statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MitmStats {
    /// IPv4 frames intercepted and relayed onward.
    pub relayed_frames: u64,
    /// Bytes of IPv4 payload that crossed the attacker.
    pub intercepted_bytes: u64,
    /// Poisoning rounds emitted.
    pub poison_rounds: u64,
}

/// A full-duplex ARP-poisoning man-in-the-middle.
///
/// Each round it sends two unicast forged replies — telling A that B's IP
/// is at the attacker, and B that A's IP is at the attacker — then
/// transparently relays the intercepted IPv4 traffic so the victims
/// notice nothing. This is the `ettercap`-style attack the detection
/// schemes are scored against.
#[derive(Debug)]
pub struct MitmRelay {
    config: MitmRelayConfig,
    truth: GroundTruth,
    /// Live intercept counters.
    pub stats: MitmStats,
}

const TICK: u64 = 1;

impl MitmRelay {
    /// Creates a relay reporting into `truth`.
    pub fn new(config: MitmRelayConfig, truth: GroundTruth) -> Self {
        MitmRelay { config, truth, stats: MitmStats::default() }
    }

    fn poison(&mut self, ctx: &mut DeviceCtx<'_>) {
        let c = self.config;
        for (victim_of_forgery, poisoned_host) in [(c.side_b, c.side_a), (c.side_a, c.side_b)] {
            let forged = ArpPacket {
                op: ArpOp::Reply,
                sender_mac: c.attacker_mac,
                sender_ip: victim_of_forgery.0,
                target_mac: poisoned_host.1,
                target_ip: poisoned_host.0,
            };
            ctx.send(
                PortId(0),
                eth_frame(poisoned_host.1, c.attacker_mac, EtherType::ARP, &forged),
            );
            self.truth.record(AttackEvent {
                at: ctx.now(),
                attacker: c.attacker_mac,
                kind: AttackKind::ArpPoison(PoisonVariant::UnicastReply),
                forged_ip: Some(victim_of_forgery.0),
                claimed_mac: Some(c.attacker_mac),
            });
        }
        self.stats.poison_rounds += 1;
    }
}

impl Device for MitmRelay {
    fn name(&self) -> &str {
        "mitm-relay"
    }

    fn port_count(&self) -> usize {
        1
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(self.config.start_delay, TICK);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token != TICK {
            return;
        }
        self.poison(ctx);
        ctx.schedule_in(self.config.repeat, TICK);
    }

    fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
        let Ok(eth) = EthernetFrame::parse(frame) else {
            return;
        };
        // Only traffic steered to us by the poisoned caches is relayed.
        if eth.dst != self.config.attacker_mac || eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(pkt) = Ipv4Packet::parse(&eth.payload) else {
            return;
        };
        // Work out which real station this packet was meant for.
        let real_dst = if pkt.dst == self.config.side_a.0 {
            self.config.side_a.1
        } else if pkt.dst == self.config.side_b.0 {
            self.config.side_b.1
        } else {
            return; // not part of the intercepted conversation
        };
        self.stats.relayed_frames += 1;
        self.stats.intercepted_bytes += pkt.payload.len() as u64;
        // An attacker could tamper here; we relay verbatim to stay covert.
        let _ = IpProtocol::Udp; // (payload protocols pass through untouched)
        ctx.send(
            PortId(0),
            eth_frame(real_dst, self.config.attacker_mac, EtherType::Ipv4, &eth.payload[..]),
        );
    }
}

// End-to-end interception behaviour is exercised in the crate integration
// tests (`tests/mitm.rs`) with real victim hosts.
