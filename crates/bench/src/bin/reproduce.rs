//! Regenerates every table and figure of the evaluation.
//!
//! ```text
//! reproduce                   # run everything
//! reproduce t3 f1             # run a subset by id
//! reproduce --out DIR         # also write CSVs (default: results/)
//! reproduce t6s --defend      # also run the DAI-defended scale sweep (id t6sd)
//! reproduce --trace t2        # additionally write results/trace/t2.{json,csv,hist.csv}
//! reproduce --capture t2      # additionally write results/capture/t2.{pcapng,index.json}
//! reproduce --profile t6s     # additionally write results/profile/t6s.{json,csv}
//! reproduce validate-trace P… # check trace manifests (files and/or directories) and exit
//! reproduce inspect FILE      # decode a .pcapng capture into a forensic timeline
//! reproduce ingest FILE…      # stream captures through the schemes as online detectors
//! reproduce profile-report F  # render a profile JSON as a self-time table
//! ```
//!
//! `--trace` installs a per-experiment trace collector around each
//! experiment, so every simulated run flushes its sim-time-stamped
//! counters, histograms, and events into one manifest per experiment
//! id under `<out>/trace/`. `--capture` additionally arms the flight
//! recorder: every wire frame lands in a bounded per-run ring
//! (capacity via `ARPSHIELD_RECORD_FRAMES`), exported as a standard
//! pcapng (openable in Wireshark) plus a JSON index tying scheme
//! verdicts to the frames that triggered them. The experiment CSVs
//! themselves are byte-identical with and without either flag.
//!
//! `--profile` wraps each experiment in the span-scoped wall-clock
//! profiler from `crates/trace`: hierarchical self/total times and
//! call counts for the simulator, switch, scheme, and pool hot paths,
//! plus sampled runtime gauges. Wall-clock data is quarantined to the
//! `<out>/profile/` sidecars and stderr — the experiment CSVs stay
//! byte-identical with and without `--profile` at any thread count.
//!
//! `inspect` joins a capture with its `.index.json` sidecar into a
//! per-run timeline interleaving frames, cache/CAM mutations, and
//! scheme verdicts; `--host S`, `--mac S`, and `--verdict S` narrow it.
//!
//! `ingest` streams pcapng files (arpshield's own or foreign ones) in
//! constant memory through any monitor-class scheme running standalone.
//! `--scheme K` picks detectors (default: all supported), `--vantage S`
//! replays only frames a live run delivered to device `S` — from a
//! monitor's vantage point this reproduces the live run's verdict
//! counters byte-for-byte — and `--capture` re-records the ingested
//! frames with the new detectors' alert provenance.

use std::collections::HashMap;
use std::fs;
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use arpshield_core::experiment::{
    f1_detection_latency, f2_overhead, f3_resolution_latency, f4_poisoned_time, f5_passive_scale,
    f6_flood_dynamics, f6_starvation_dynamics, t2_susceptibility, t3_coverage, t4_false_positives,
    t5_cost, t5_resilience, t6_dos_coverage, t6_scale, t6_scale_defended, T6S_SIZES,
};
use arpshield_core::{taxonomy, Series, Table};
use arpshield_netsim::SimTime;
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetFrame};
use arpshield_schemes::{Detector, SchemeKind};
use arpshield_trace::pcapng::PcapngStream;
use arpshield_trace::{profile, Heartbeat, ProfileCollector, TraceCollector, Tracer};

const SEED: u64 = 20070625; // the venue's year, as a nod

struct Output {
    out_dir: PathBuf,
    trace: bool,
    /// Flight-recorder ring capacity; `Some` arms `--capture`.
    capture: Option<usize>,
    profile: bool,
}

impl Output {
    /// Runs one experiment under the requested telemetry: `--trace`/
    /// `--capture` manifests land in `<out>/trace/` and `<out>/capture/`,
    /// `--profile` span/gauge reports in `<out>/profile/<id>.{json,csv}`.
    fn traced<T>(&self, id: &str, f: impl FnOnce() -> T) -> T {
        if !self.profile {
            return self.trace_collected(id, f);
        }
        // The profiler wraps the trace collector so worker threads see
        // both. No root span opens here: the per-job spans inside each
        // experiment are the tree roots, so profile paths are identical
        // whether jobs run inline (ARPSHIELD_THREADS=1) or on workers.
        let collector = Arc::new(arpshield_trace::ProfileCollector::new());
        let started = Instant::now();
        let result = {
            let _guard = arpshield_trace::profile::install(collector.clone());
            self.trace_collected(id, f)
        };
        let wall_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let report = collector.report(id, wall_ns);
        self.write_artifacts(
            "profile",
            &[
                (format!("{id}.json"), report.to_json().into_bytes()),
                (format!("{id}.csv"), report.to_csv().into_bytes()),
            ],
        );
        result
    }

    /// Runs one experiment, optionally under a fresh trace collector
    /// whose manifest lands in `<out>/trace/<id>.{json,csv,hist.csv}`
    /// and whose capture lands in `<out>/capture/<id>.{pcapng,index.json}`.
    fn trace_collected<T>(&self, id: &str, f: impl FnOnce() -> T) -> T {
        if !self.trace && self.capture.is_none() {
            return f();
        }
        let collector = Arc::new(match self.capture {
            Some(capacity) => TraceCollector::with_capture(capacity),
            None => TraceCollector::new(),
        });
        let result = {
            let _guard = arpshield_trace::install(collector.clone());
            f()
        };
        let manifest = collector.manifest(id);
        if self.trace {
            self.write_artifacts(
                "trace",
                &[
                    (format!("{id}.json"), manifest.to_json().into_bytes()),
                    (format!("{id}.csv"), manifest.to_counters_csv().into_bytes()),
                    (format!("{id}.hist.csv"), manifest.to_histograms_csv().into_bytes()),
                ],
            );
        }
        if self.capture.is_some() {
            self.write_artifacts(
                "capture",
                &[
                    (format!("{id}.pcapng"), manifest.to_pcapng()),
                    (format!("{id}.index.json"), manifest.to_capture_index().into_bytes()),
                ],
            );
        }
        result
    }

    fn write_artifacts(&self, subdir: &str, files: &[(String, Vec<u8>)]) {
        let dir = self.out_dir.join(subdir);
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
            return;
        }
        for (name, body) in files {
            let path = dir.join(name);
            if let Err(e) = fs::write(&path, body) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }

    fn table(&self, id: &str, make: impl FnOnce() -> Table) {
        let table = self.traced(id, make);
        println!("{}", table.render());
        let path = self.out_dir.join(format!("{id}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    fn series(&self, id: &str, make: impl FnOnce() -> Vec<Series>) {
        let series = self.traced(id, make);
        for (i, s) in series.iter().enumerate() {
            println!("{}", s.render());
            let path = self.out_dir.join(format!("{id}_{i}.csv"));
            if let Err(e) = fs::write(&path, s.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// Checks that `path` holds a well-formed `arpshield-trace/1` manifest.
///
/// Returns a human-readable error naming the first violated invariant.
fn validate_trace_manifest(path: &str) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = arpshield_testkit::json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or("missing string field `schema`".to_string())?;
    if schema != "arpshield-trace/1" {
        return Err(format!("unknown schema {schema:?}"));
    }
    doc.get("experiment")
        .and_then(|v| v.as_str())
        .ok_or("missing string field `experiment`".to_string())?;
    let unit = doc
        .get("time_unit")
        .and_then(|v| v.as_str())
        .ok_or("missing string field `time_unit`".to_string())?;
    if unit != "ns" {
        return Err(format!("unexpected time_unit {unit:?}"));
    }
    doc.get("totals").ok_or("missing field `totals`".to_string())?;
    doc.get("warnings")
        .and_then(|v| v.as_arr())
        .ok_or("missing array field `warnings`".to_string())?;
    let runs =
        doc.get("runs").and_then(|v| v.as_arr()).ok_or("missing array field `runs`".to_string())?;
    for (i, run) in runs.iter().enumerate() {
        run.get("label")
            .and_then(|v| v.as_str())
            .ok_or(format!("run {i}: missing string field `label`"))?;
        run.get("counters").ok_or(format!("run {i}: missing field `counters`"))?;
        let events = run
            .get("events")
            .and_then(|v| v.as_arr())
            .ok_or(format!("run {i}: missing array field `events`"))?;
        for (j, event) in events.iter().enumerate() {
            event
                .get("at_ns")
                .and_then(|v| v.as_num())
                .ok_or(format!("run {i} event {j}: missing numeric field `at_ns`"))?;
        }
    }
    Ok(format!("{path}: valid arpshield-trace/1 manifest with {} run(s)", runs.len()))
}

/// Expands a mix of file and directory arguments into the sorted list
/// of manifest files to validate: directories contribute every
/// `*.json` beneath them (recursively), explicit files pass through.
fn collect_manifest_paths(arg: &Path, found: &mut Vec<PathBuf>) -> Result<(), String> {
    if !arg.is_dir() {
        found.push(arg.to_path_buf());
        return Ok(());
    }
    let entries = fs::read_dir(arg).map_err(|e| format!("cannot read {}: {e}", arg.display()))?;
    let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            collect_manifest_paths(&child, found)?;
        } else if child.extension().is_some_and(|ext| ext == "json") {
            found.push(child);
        }
    }
    Ok(())
}

fn run_validate_trace(paths: &[String]) -> i32 {
    let mut files = Vec::new();
    for arg in paths {
        if let Err(e) = collect_manifest_paths(Path::new(arg), &mut files) {
            eprintln!("error: {e}");
            return 1;
        }
    }
    if files.is_empty() {
        eprintln!("error: no manifest files found under the given paths");
        return 1;
    }
    let mut failed = 0usize;
    for file in &files {
        match validate_trace_manifest(&file.display().to_string()) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("error: {}: {e}", file.display());
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} of {} manifest(s) failed validation", files.len());
        1
    } else {
        0
    }
}

// ---------------------------------------------------------------------
// `profile-report`: render a profile JSON as a self-time table.
// ---------------------------------------------------------------------

/// Loads an `arpshield-profile/1` report and prints its spans sorted by
/// self time (where the wall clock actually went), then the sampled
/// runtime gauges. Returns a human-readable error for malformed input.
fn run_profile_report(path: &str) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc =
        arpshield_testkit::json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("{path}: missing string field `schema`"))?;
    if schema != arpshield_trace::PROFILE_SCHEMA {
        return Err(format!(
            "{path}: unknown schema {schema:?} (expected {:?})",
            arpshield_trace::PROFILE_SCHEMA
        ));
    }
    let experiment = doc.get("experiment").and_then(|v| v.as_str()).unwrap_or("?").to_string();
    let wall_ns = doc.get("wall_ns").and_then(|v| v.as_num()).unwrap_or(0.0);
    let self_total_ns = doc.get("self_total_ns").and_then(|v| v.as_num()).unwrap_or(0.0);
    let spans = doc
        .get("spans")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("{path}: missing array field `spans`"))?;

    struct Row {
        path: String,
        count: u64,
        total_ns: f64,
        self_ns: f64,
    }
    let mut rows = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        rows.push(Row {
            path: span
                .get("path")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("{path}: span {i}: missing string field `path`"))?
                .to_string(),
            count: span.get("count").and_then(|v| v.as_num()).unwrap_or(0.0) as u64,
            total_ns: span.get("total_ns").and_then(|v| v.as_num()).unwrap_or(0.0),
            self_ns: span.get("self_ns").and_then(|v| v.as_num()).unwrap_or(0.0),
        });
    }
    rows.sort_by(|a, b| b.self_ns.total_cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));

    let wall_s = wall_ns / 1e9;
    let coverage = if wall_ns > 0.0 { 100.0 * self_total_ns / wall_ns } else { 0.0 };
    println!("profile: {experiment} ({schema})");
    println!(
        "wall {wall_s:.3}s; {} span path(s) accounting {:.3}s self time ({coverage:.1}% coverage)\n",
        rows.len(),
        self_total_ns / 1e9,
    );
    let path_width = rows.iter().map(|r| r.path.len()).chain(["span".len()].into_iter()).max();
    let path_width = path_width.unwrap_or(4);
    println!(
        "{:<path_width$}  {:>12}  {:>12}  {:>12}  {:>7}",
        "span", "count", "total_ms", "self_ms", "self_%"
    );
    for row in &rows {
        let pct = if wall_ns > 0.0 { 100.0 * row.self_ns / wall_ns } else { 0.0 };
        println!(
            "{:<path_width$}  {:>12}  {:>12.3}  {:>12.3}  {:>6.1}%",
            row.path,
            row.count,
            row.total_ns / 1e6,
            row.self_ns / 1e6,
            pct,
        );
    }
    let gauges = doc.get("gauges").and_then(|v| v.as_arr()).unwrap_or_default();
    if !gauges.is_empty() {
        println!();
        println!(
            "{:<path_width$}  {:>12}  {:>12}  {:>12}  {:>12}",
            "gauge", "samples", "min", "max", "mean"
        );
        for gauge in gauges {
            let name = gauge.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let samples = gauge.get("samples").and_then(|v| v.as_num()).unwrap_or(0.0);
            let min = gauge.get("min").and_then(|v| v.as_num()).unwrap_or(0.0);
            let max = gauge.get("max").and_then(|v| v.as_num()).unwrap_or(0.0);
            let sum = gauge.get("sum").and_then(|v| v.as_num()).unwrap_or(0.0);
            let mean = if samples > 0.0 { sum / samples } else { 0.0 };
            println!(
                "{name:<path_width$}  {:>12}  {:>12}  {:>12}  {mean:>12.1}",
                samples as u64, min as u64, max as u64,
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// `inspect`: the forensic timeline.
// ---------------------------------------------------------------------

/// One frame row, reassembled from a pcapng packet and its comment.
struct FrameLine {
    id: u64,
    at_ns: u64,
    kind: String,
    src: String,
    dst: String,
    len: usize,
    pinned: bool,
    decoded: String,
}

/// One event row from the capture index.
struct EventLine {
    at_ns: u64,
    category: String,
    actor: String,
    detail: String,
    frames: Vec<u64>,
}

/// Splits a writer comment (`id=N kind=K src=S dst=D [pinned]`) into
/// its fields; tolerates foreign captures with free-form comments.
fn parse_frame_comment(comment: &str) -> (Option<u64>, String, String, String, bool) {
    let mut id = None;
    let mut kind = String::new();
    let mut src = String::new();
    let mut dst = String::new();
    let mut pinned = false;
    for token in comment.split_whitespace() {
        match token.split_once('=') {
            Some(("id", v)) => id = v.parse().ok(),
            Some(("kind", v)) => kind = v.to_string(),
            Some(("src", v)) => src = v.to_string(),
            Some(("dst", v)) => dst = v.to_string(),
            _ => pinned |= token == "pinned",
        }
    }
    (id, kind, src, dst, pinned)
}

/// One-line protocol decode of a captured frame, via `crates/packet`.
fn decode_frame(bytes: &[u8]) -> String {
    let Ok(eth) = EthernetFrame::parse(bytes) else {
        return "unparseable ethernet frame".to_string();
    };
    match eth.ethertype {
        EtherType::ARP => match ArpPacket::parse(&eth.payload) {
            Ok(arp) => {
                if arp.is_probe() {
                    format!("ARP probe who-has {} (from {})", arp.target_ip, arp.sender_mac)
                } else if arp.is_gratuitous() {
                    format!("gratuitous ARP {} is-at {}", arp.sender_ip, arp.sender_mac)
                } else if arp.op == ArpOp::Request {
                    format!("ARP who-has {} tell {}", arp.target_ip, arp.sender_ip)
                } else {
                    format!("ARP {} is-at {} (to {})", arp.sender_ip, arp.sender_mac, arp.target_ip)
                }
            }
            Err(_) => format!("malformed ARP from {}", eth.src),
        },
        // Authenticated variants carry scheme-specific payloads behind
        // the plain header; name the protocol and the endpoints.
        other => format!("{other} {} -> {}", eth.src, eth.dst),
    }
}

fn fmt_ts(at_ns: u64) -> String {
    format!("{}.{:09}", at_ns / 1_000_000_000, at_ns % 1_000_000_000)
}

struct InspectFilter {
    host: Option<String>,
    mac: Option<String>,
    verdict: Option<String>,
}

impl InspectFilter {
    fn frame_matches(&self, f: &FrameLine) -> bool {
        let host_ok = self
            .host
            .as_ref()
            .map(|h| f.src.contains(h.as_str()) || f.dst.contains(h.as_str()))
            .unwrap_or(true);
        let mac_ok = self.mac.as_ref().map(|m| f.decoded.contains(m.as_str())).unwrap_or(true);
        host_ok && mac_ok
    }

    fn event_matches(&self, e: &EventLine) -> bool {
        let host_ok = self
            .host
            .as_ref()
            .map(|h| e.actor.contains(h.as_str()) || e.detail.contains(h.as_str()))
            .unwrap_or(true);
        let mac_ok = self.mac.as_ref().map(|m| e.detail.contains(m.as_str())).unwrap_or(true);
        let verdict_ok = self
            .verdict
            .as_ref()
            .map(|v| e.category.starts_with("scheme.verdict") && e.detail.contains(v.as_str()))
            .unwrap_or(true);
        host_ok && mac_ok && verdict_ok
    }
}

/// Loads the `.index.json` sidecar next to `path`, returning per-label
/// events and eviction counts. A capture without its index still
/// inspects (frames only), so hand-copied pcapng files work.
#[allow(clippy::type_complexity)]
fn load_index(
    path: &str,
) -> Result<(HashMap<String, Vec<EventLine>>, HashMap<String, u64>), String> {
    let sidecar = match path.strip_suffix(".pcapng") {
        Some(stem) => format!("{stem}.index.json"),
        None => format!("{path}.index.json"),
    };
    let mut events_by_label = HashMap::new();
    let mut evicted_by_label = HashMap::new();
    let Ok(text) = fs::read_to_string(&sidecar) else {
        eprintln!("note: no index sidecar at {sidecar}; timeline will show frames only");
        return Ok((events_by_label, evicted_by_label));
    };
    let doc = arpshield_testkit::json::parse(&text)
        .map_err(|e| format!("{sidecar}: invalid JSON: {e}"))?;
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or_default();
    if schema != "arpshield-capture/1" {
        return Err(format!("{sidecar}: unknown schema {schema:?}"));
    }
    for run in doc.get("runs").and_then(|v| v.as_arr()).unwrap_or_default() {
        let Some(label) = run.get("label").and_then(|v| v.as_str()) else {
            continue;
        };
        let evicted = run.get("frames_evicted").and_then(|v| v.as_num()).unwrap_or(0.0) as u64;
        evicted_by_label.insert(label.to_string(), evicted);
        let mut events = Vec::new();
        for ev in run.get("events").and_then(|v| v.as_arr()).unwrap_or_default() {
            events.push(EventLine {
                at_ns: ev.get("at_ns").and_then(|v| v.as_num()).unwrap_or(0.0) as u64,
                category: ev
                    .get("category")
                    .and_then(|v| v.as_str())
                    .unwrap_or_default()
                    .to_string(),
                actor: ev.get("actor").and_then(|v| v.as_str()).unwrap_or_default().to_string(),
                detail: ev.get("detail").and_then(|v| v.as_str()).unwrap_or_default().to_string(),
                frames: ev
                    .get("frames")
                    .and_then(|v| v.as_arr())
                    .unwrap_or_default()
                    .iter()
                    .filter_map(|id| id.as_num())
                    .map(|id| id as u64)
                    .collect(),
            });
        }
        events_by_label.insert(label.to_string(), events);
    }
    Ok((events_by_label, evicted_by_label))
}

fn run_inspect(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut filter = InspectFilter { host: None, mac: None, verdict: None };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value =
            |name: &str| it.next().map(|v| v.to_string()).ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--host" => filter.host = Some(flag_value("--host")?),
            "--mac" => filter.mac = Some(flag_value("--mac")?),
            "--verdict" => filter.verdict = Some(flag_value("--verdict")?),
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("usage: reproduce inspect FILE [--host S] [--mac S] [--verdict S]")?;
    let raw = fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let capture = arpshield_trace::pcapng::parse(&raw).map_err(|e| format!("{path}: {e}"))?;
    let (events_by_label, evicted_by_label) = load_index(&path)?;

    let mut frames_by_run: Vec<Vec<FrameLine>> = Vec::new();
    frames_by_run.resize_with(capture.interfaces.len(), Vec::new);
    for (seq, pkt) in capture.packets.iter().enumerate() {
        let (id, kind, src, dst, pinned) = parse_frame_comment(&pkt.comment);
        frames_by_run[pkt.interface].push(FrameLine {
            id: id.unwrap_or(seq as u64 + 1),
            at_ns: pkt.ts_ns,
            kind,
            src,
            dst,
            len: pkt.bytes.len(),
            pinned,
            decoded: decode_frame(&pkt.bytes),
        });
    }

    let (mut frames_shown, mut frames_total) = (0usize, 0usize);
    let (mut events_shown, mut events_total) = (0usize, 0usize);
    for (run, label) in capture.interfaces.iter().enumerate() {
        let frames = &frames_by_run[run];
        let events = events_by_label.get(label).map(Vec::as_slice).unwrap_or_default();
        frames_total += frames.len();
        events_total += events.len();

        // With --verdict, frames appear only as verdict provenance.
        let cited: Option<std::collections::HashSet<u64>> = filter.verdict.as_ref().map(|_| {
            events
                .iter()
                .filter(|e| filter.event_matches(e))
                .flat_map(|e| e.frames.iter().copied())
                .collect()
        });
        let visible_frames: Vec<&FrameLine> = frames
            .iter()
            .filter(|f| cited.as_ref().map(|set| set.contains(&f.id)).unwrap_or(true))
            .filter(|f| filter.frame_matches(f))
            .collect();
        let visible_events: Vec<&EventLine> =
            events.iter().filter(|e| filter.event_matches(e)).collect();
        if visible_frames.is_empty() && visible_events.is_empty() {
            continue;
        }

        let evicted = evicted_by_label.get(label).copied().unwrap_or(0);
        println!(
            "== run: {label} ({} frame(s) captured, {evicted} evicted, {} event(s)) ==",
            frames.len(),
            events.len(),
        );
        // Merge-sort frames and events into one timeline: by sim time,
        // frames before events at the same instant (an event at t was
        // caused by a frame dispatched at t), then record order.
        enum Entry<'a> {
            Frame(&'a FrameLine),
            Event(&'a EventLine),
        }
        let mut timeline: Vec<(u64, u8, u64, Entry<'_>)> = Vec::new();
        for f in &visible_frames {
            timeline.push((f.at_ns, 0, f.id, Entry::Frame(f)));
        }
        for (seq, e) in visible_events.iter().enumerate() {
            timeline.push((e.at_ns, 1, seq as u64, Entry::Event(e)));
        }
        timeline.sort_by_key(|(at, class, seq, _)| (*at, *class, *seq));
        for (_, _, _, entry) in &timeline {
            match entry {
                Entry::Frame(f) => {
                    frames_shown += 1;
                    println!(
                        "  {}  #{:<5} {:<14} {} -> {}  {}B  {}{}",
                        fmt_ts(f.at_ns),
                        f.id,
                        f.kind,
                        f.src,
                        f.dst,
                        f.len,
                        f.decoded,
                        if f.pinned { "  [pinned]" } else { "" },
                    );
                }
                Entry::Event(e) => {
                    events_shown += 1;
                    let refs = if e.frames.is_empty() {
                        String::new()
                    } else {
                        let ids: Vec<String> = e.frames.iter().map(|id| format!("#{id}")).collect();
                        format!("  <= frames {}", ids.join(" "))
                    };
                    println!(
                        "  {}  * {:<22} {:<16} {}{}",
                        fmt_ts(e.at_ns),
                        e.category,
                        e.actor,
                        e.detail,
                        refs,
                    );
                }
            }
        }
        println!();
    }
    println!(
        "{} run(s); showing {frames_shown}/{frames_total} frame(s), \
         {events_shown}/{events_total} event(s)",
        capture.interfaces.len(),
    );
    Ok(())
}

// ---------------------------------------------------------------------
// `ingest`: streaming capture replay through standalone detectors.
// ---------------------------------------------------------------------

const INGEST_USAGE: &str = "usage: reproduce ingest FILE... [--stdin] [--scheme K]... \
     [--vantage S] [--out DIR] [--capture] [--profile]";

struct IngestOptions {
    sources: Vec<String>,
    stdin: bool,
    schemes: Vec<SchemeKind>,
    vantage: Option<String>,
    out_dir: PathBuf,
    capture: bool,
    profile: bool,
}

fn parse_ingest_args(args: &[String]) -> Result<IngestOptions, String> {
    let mut opts = IngestOptions {
        sources: Vec::new(),
        stdin: false,
        schemes: Vec::new(),
        vantage: None,
        out_dir: PathBuf::from("results"),
        capture: false,
        profile: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value =
            |name: &str| it.next().map(|v| v.to_string()).ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--stdin" => opts.stdin = true,
            "--capture" => opts.capture = true,
            "--profile" => opts.profile = true,
            "--vantage" => opts.vantage = Some(flag_value("--vantage")?),
            "--out" => opts.out_dir = PathBuf::from(flag_value("--out")?),
            "--scheme" => {
                let label = flag_value("--scheme")?;
                let kind = SchemeKind::from_label(&label)
                    .ok_or_else(|| format!("unknown scheme {label:?}"))?;
                if !Detector::is_supported(kind) {
                    return Err(format!(
                        "scheme '{label}' cannot run as a standalone detector; supported: {}",
                        supported_labels().join(", ")
                    ));
                }
                opts.schemes.push(kind);
            }
            other if !other.starts_with('-') => opts.sources.push(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}\n{INGEST_USAGE}")),
        }
    }
    if opts.sources.is_empty() && !opts.stdin {
        return Err(INGEST_USAGE.to_string());
    }
    if opts.schemes.is_empty() {
        opts.schemes = Detector::supported();
    }
    Ok(opts)
}

fn supported_labels() -> Vec<&'static str> {
    Detector::supported().iter().map(|k| k.label()).collect()
}

/// Streams one pcapng source through a detector per (capture run ×
/// scheme), printing per-run verdicts and whole-source throughput.
/// Detectors are created lazily on the first frame that passes the
/// vantage filter, so capture runs that never touched the requested
/// vantage point contribute no runs to the manifest.
fn ingest_source(
    name: &str,
    input: &mut dyn Read,
    opts: &IngestOptions,
) -> Result<(u64, u64), String> {
    let stem = Path::new(name)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| name.to_string());
    let started = Instant::now();
    let mut hb = Heartbeat::new(format!("ingest {stem}"));
    let mut stream = PcapngStream::new(input);
    let mut detectors: HashMap<(usize, usize), Detector> = HashMap::new();
    let mut filtered = 0u64;
    let mut pulled = 0u64;
    // Reused scratch so the per-frame copy out of the stream's block
    // buffer never allocates in steady state.
    let mut frame = Vec::new();
    let mut comment = String::new();
    loop {
        // The interval check is decimated to every HEARTBEAT_EVERY
        // packets so a million-packet stream never pays a clock read
        // per frame; a slow trickle still heartbeats at each batch.
        const HEARTBEAT_EVERY: u64 = 4096;
        if pulled % HEARTBEAT_EVERY == 0 && pulled > 0 {
            let stats = stream.stats();
            hb.tick(|hb| {
                let wall_s = hb.elapsed().as_secs_f64().max(1e-9);
                format!(
                    "packets={} bytes={} packets_per_wall_s={:.0} mb_per_wall_s={:.1}",
                    stats.packets,
                    stats.bytes,
                    stats.packets as f64 / wall_s,
                    stats.bytes as f64 / wall_s / 1e6,
                )
            });
        }
        let next = {
            let _s = profile::span("ingest.read");
            stream.next_packet()
        };
        let (interface, ts_ns) = match next {
            Err(e) => return Err(format!("{name}: {e}")),
            Ok(None) => break,
            Ok(Some(pkt)) => {
                frame.clear();
                frame.extend_from_slice(pkt.bytes);
                comment.clear();
                comment.push_str(pkt.comment);
                (pkt.interface, pkt.ts_ns)
            }
        };
        pulled += 1;
        let (_, _, src, dst, _) = parse_frame_comment(&comment);
        if let Some(vantage) = &opts.vantage {
            // Foreign captures have no arpshield comments; everything
            // they hold is "what the detector saw".
            if !comment.is_empty() && !dst.contains(vantage.as_str()) {
                filtered += 1;
                continue;
            }
        }
        let at = SimTime::from_nanos(ts_ns);
        let run_label = stream
            .interfaces()
            .get(interface)
            .filter(|l| !l.is_empty())
            .cloned()
            .unwrap_or_else(|| format!("if{interface}"));
        for (index, kind) in opts.schemes.iter().enumerate() {
            let detector = detectors.entry((interface, index)).or_insert_with(|| {
                Detector::with_tracer(
                    *kind,
                    Tracer::for_current_run(format!(
                        "ingest={stem} detector={kind} run={run_label}"
                    )),
                )
                .expect("scheme support validated at argument parse")
            });
            let (src, dst) = if comment.is_empty() {
                ("wire", "detector")
            } else {
                (src.as_str(), dst.as_str())
            };
            detector.observe_from(at, &frame, src, dst);
        }
    }
    for warning in stream.warnings() {
        eprintln!("warning: {name}: {warning}");
        if let Some(collector) = arpshield_trace::current() {
            collector.warn(format!("{name}: {warning}"));
        }
    }
    let stats = stream.stats();
    let mut runs: Vec<_> = detectors.into_iter().collect();
    runs.sort_by_key(|((interface, scheme), _)| (*interface, *scheme));
    println!(
        "== ingest: {name} ({} section(s), {} block(s), {} packet(s), {} unknown block(s)) ==",
        stats.sections, stats.blocks, stats.packets, stats.unknown_blocks
    );
    if filtered > 0 {
        let vantage = opts.vantage.as_deref().unwrap_or_default();
        println!(
            "  vantage '{vantage}': {filtered} frame(s) recorded at other vantage points skipped"
        );
    }
    for ((interface, _), detector) in &mut runs {
        detector.finish();
        let ingest = detector.stats();
        let label = stream
            .interfaces()
            .get(*interface)
            .filter(|l| !l.is_empty())
            .cloned()
            .unwrap_or_else(|| format!("if{interface}"));
        let verdicts = detector
            .verdict_histogram()
            .into_iter()
            .map(|(kind, n)| format!("{kind}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  run {label}  detector={}  frames={} arp={} vlan={} jumbo={} unparseable={} \
             denied={} probes={}  alerts={}{}",
            detector.kind(),
            ingest.frames,
            ingest.arp,
            ingest.vlan_tagged,
            ingest.jumbo,
            ingest.unparseable,
            ingest.denied,
            ingest.probes_emitted,
            detector.alerts().len(),
            if verdicts.is_empty() { String::new() } else { format!("  [{verdicts}]") },
        );
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    println!(
        "  {} packet(s), {} byte(s) in {:.3}s: {:.0} frames/s, {:.1} MB/s\n",
        stats.packets,
        stats.bytes,
        elapsed,
        stats.packets as f64 / elapsed,
        stats.bytes as f64 / elapsed / 1e6,
    );
    hb.done(&format!(
        "packets={} bytes={} packets_per_wall_s={:.0}",
        stats.packets,
        stats.bytes,
        stats.packets as f64 / elapsed,
    ));
    // Dropping the detectors flushes their run sections into the
    // installed collector, making them visible to `manifest`.
    drop(runs);
    Ok((stats.packets, filtered))
}

fn run_ingest(args: &[String]) -> Result<(), String> {
    let opts = parse_ingest_args(args)?;
    let collector = Arc::new(if opts.capture {
        let (capacity, warning) = arpshield_trace::ring_capacity_from_env();
        if let Some(w) = warning {
            eprintln!("warning: {w}");
        }
        TraceCollector::with_capture(capacity)
    } else {
        TraceCollector::new()
    });
    let _guard = arpshield_trace::install(collector.clone());
    println!(
        "arpshield capture ingest: scheme(s) [{}] as online detector(s)\n",
        opts.schemes.iter().map(|k| k.label()).collect::<Vec<_>>().join(", ")
    );
    let profiler = opts.profile.then(|| Arc::new(ProfileCollector::new()));
    let profile_started = Instant::now();
    let (mut packets, mut filtered) = (0u64, 0u64);
    {
        let _profile_guard = profiler.clone().map(profile::install);
        for source in &opts.sources {
            let file = fs::File::open(source).map_err(|e| format!("cannot open {source}: {e}"))?;
            let mut reader = BufReader::new(file);
            let (p, f) = ingest_source(source, &mut reader, &opts)?;
            packets += p;
            filtered += f;
        }
        if opts.stdin {
            let stdin = std::io::stdin();
            let mut reader = stdin.lock();
            let (p, f) = ingest_source("stdin", &mut reader, &opts)?;
            packets += p;
            filtered += f;
        }
    }
    let manifest = collector.manifest("ingest");
    let out = Output {
        out_dir: opts.out_dir.clone(),
        trace: true,
        capture: opts.capture.then_some(0),
        profile: opts.profile,
    };
    if let Some(profiler) = &profiler {
        let wall_ns = profile_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let report = profiler.report("ingest", wall_ns);
        out.write_artifacts(
            "profile",
            &[
                ("ingest.json".to_string(), report.to_json().into_bytes()),
                ("ingest.csv".to_string(), report.to_csv().into_bytes()),
            ],
        );
    }
    out.write_artifacts(
        "trace",
        &[
            ("ingest.json".to_string(), manifest.to_json().into_bytes()),
            ("ingest.csv".to_string(), manifest.to_counters_csv().into_bytes()),
            ("ingest.hist.csv".to_string(), manifest.to_histograms_csv().into_bytes()),
        ],
    );
    if opts.capture {
        out.write_artifacts(
            "capture",
            &[
                ("ingest.pcapng".to_string(), manifest.to_pcapng()),
                ("ingest.index.json".to_string(), manifest.to_capture_index().into_bytes()),
            ],
        );
    }
    println!(
        "{} packet(s) ingested ({filtered} filtered by vantage); manifest: {}",
        packets,
        out.out_dir.join("trace").join("ingest.json").display(),
    );
    Ok(())
}

/// Host counts for the T6S scalability sweep. `ARPSHIELD_T6S_HOSTS`
/// (comma-separated) overrides the published 1k–100k grid so CI can
/// smoke the experiment at small sizes.
fn t6s_sizes() -> Vec<usize> {
    let (sizes, warning) = arpshield_trace::env_knob::knob("ARPSHIELD_T6S_HOSTS").parse_list_or(
        T6S_SIZES.to_vec(),
        "a comma-separated list of positive host counts",
        |n: &usize| *n >= 1,
    );
    arpshield_trace::env_knob::report(warning);
    sizes
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("validate-trace") {
        if args.len() < 2 {
            eprintln!("usage: reproduce validate-trace FILE_OR_DIR...");
            std::process::exit(2);
        }
        std::process::exit(run_validate_trace(&args[1..]));
    }

    if args.first().map(String::as_str) == Some("inspect") {
        match run_inspect(&args[1..]) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(if e.starts_with("usage:") { 2 } else { 1 });
            }
        }
    }

    if args.first().map(String::as_str) == Some("ingest") {
        match run_ingest(&args[1..]) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(if e.starts_with("usage:") { 2 } else { 1 });
            }
        }
    }

    if args.first().map(String::as_str) == Some("profile-report") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: reproduce profile-report FILE");
            std::process::exit(2);
        };
        match run_profile_report(path) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut out_dir = PathBuf::from("results");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        if pos < args.len() {
            out_dir = PathBuf::from(args.remove(pos));
        }
    }
    let mut trace = false;
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        args.remove(pos);
        trace = true;
    }
    let mut defend = false;
    if let Some(pos) = args.iter().position(|a| a == "--defend") {
        args.remove(pos);
        defend = true;
    }
    let mut capture = None;
    if let Some(pos) = args.iter().position(|a| a == "--capture") {
        args.remove(pos);
        let (capacity, warning) = arpshield_trace::ring_capacity_from_env();
        if let Some(w) = warning {
            eprintln!("warning: {w}");
        }
        capture = Some(capacity);
    }
    let mut profile_flag = false;
    if let Some(pos) = args.iter().position(|a| a == "--profile") {
        args.remove(pos);
        profile_flag = true;
    }
    fs::create_dir_all(&out_dir).ok();
    let out = Output { out_dir, trace, capture, profile: profile_flag };
    let selected: Vec<String> = args.iter().map(|a| a.to_lowercase()).collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!("arpshield reproduction harness (seed {SEED})");
    println!(
        "every experiment is deterministic; CSVs land in {}/; \
         independent runs fan out over {} worker thread(s) \
         (ARPSHIELD_THREADS overrides; output is identical at any count)\n",
        out.out_dir.display(),
        arpshield_core::parallel::thread_count(),
    );
    let started = Instant::now();

    if want("t1") {
        out.table("t1", || taxonomy::table());
    }
    if want("t2") {
        out.table("t2", || t2_susceptibility(SEED));
    }
    if want("t3") {
        out.table("t3", || t3_coverage(SEED));
    }
    if want("t4") {
        out.table("t4", || t4_false_positives(SEED));
    }
    if want("t5") {
        out.table("t5", || t5_cost(SEED));
    }
    if want("t5r") {
        out.table("t5r", || t5_resilience(SEED));
    }
    if want("t6") {
        out.table("t6", || t6_dos_coverage(SEED));
    }
    if want("t6s") {
        out.series("t6s", || t6_scale(SEED, &t6s_sizes()));
    }
    // The defended scale sweep rides behind `t6s --defend` (or its own
    // `t6sd` id) so the default full run — and its committed CSVs —
    // keep the published undefended shape.
    if selected.iter().any(|s| s == "t6sd") || (want("t6s") && defend) {
        out.series("t6sd", || t6_scale_defended(SEED, &t6s_sizes()));
    }
    if want("f1") {
        out.series("f1", || f1_detection_latency(SEED, 30));
    }
    if want("f2") {
        out.series("f2", || f2_overhead(SEED, &[5, 10, 20, 40, 80]));
    }
    if want("f3") {
        out.table("f3", || f3_resolution_latency(SEED));
    }
    if want("f4") {
        out.table("f4", || f4_poisoned_time(SEED));
    }
    if want("f5") {
        out.series("f5", || f5_passive_scale(SEED, &[5, 10, 20, 40, 80]));
    }
    if want("f6") {
        out.series("f6a", || f6_flood_dynamics(SEED));
        out.series("f6b", || vec![f6_starvation_dynamics(SEED)]);
    }

    println!("done in {:.1}s", started.elapsed().as_secs_f64());
}
