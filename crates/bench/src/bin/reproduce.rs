//! Regenerates every table and figure of the evaluation.
//!
//! ```text
//! reproduce                  # run everything
//! reproduce t3 f1            # run a subset by id
//! reproduce --out DIR        # also write CSVs (default: results/)
//! reproduce --trace t2       # additionally write results/trace/t2.{json,csv}
//! reproduce validate-trace F # check a trace manifest and exit
//! ```
//!
//! `--trace` installs a per-experiment trace collector around each
//! experiment, so every simulated run flushes its sim-time-stamped
//! counters, histograms, and events into one manifest per experiment
//! id under `<out>/trace/`. The experiment CSVs themselves are
//! byte-identical with and without the flag.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use arpshield_core::experiment::{
    f1_detection_latency, f2_overhead, f3_resolution_latency, f4_poisoned_time, f5_passive_scale,
    f6_flood_dynamics, f6_starvation_dynamics, t2_susceptibility, t3_coverage, t4_false_positives,
    t5_cost, t5_resilience, t6_dos_coverage,
};
use arpshield_core::{taxonomy, Series, Table};
use arpshield_trace::TraceCollector;

const SEED: u64 = 20070625; // the venue's year, as a nod

struct Output {
    out_dir: PathBuf,
    trace: bool,
}

impl Output {
    /// Runs one experiment, optionally under a fresh trace collector
    /// whose manifest lands in `<out>/trace/<id>.{json,csv}`.
    fn traced<T>(&self, id: &str, f: impl FnOnce() -> T) -> T {
        if !self.trace {
            return f();
        }
        let collector = Arc::new(TraceCollector::new());
        let result = {
            let _guard = arpshield_trace::install(collector.clone());
            f()
        };
        let manifest = collector.manifest(id);
        let dir = self.out_dir.join("trace");
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
            return result;
        }
        for (ext, body) in [("json", manifest.to_json()), ("csv", manifest.to_counters_csv())] {
            let path = dir.join(format!("{id}.{ext}"));
            if let Err(e) = fs::write(&path, body) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        result
    }

    fn table(&self, id: &str, make: impl FnOnce() -> Table) {
        let table = self.traced(id, make);
        println!("{}", table.render());
        let path = self.out_dir.join(format!("{id}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    fn series(&self, id: &str, make: impl FnOnce() -> Vec<Series>) {
        let series = self.traced(id, make);
        for (i, s) in series.iter().enumerate() {
            println!("{}", s.render());
            let path = self.out_dir.join(format!("{id}_{i}.csv"));
            if let Err(e) = fs::write(&path, s.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// Checks that `path` holds a well-formed `arpshield-trace/1` manifest.
///
/// Returns a human-readable error naming the first violated invariant.
fn validate_trace_manifest(path: &str) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = arpshield_testkit::json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or("missing string field `schema`".to_string())?;
    if schema != "arpshield-trace/1" {
        return Err(format!("unknown schema {schema:?}"));
    }
    doc.get("experiment")
        .and_then(|v| v.as_str())
        .ok_or("missing string field `experiment`".to_string())?;
    let unit = doc
        .get("time_unit")
        .and_then(|v| v.as_str())
        .ok_or("missing string field `time_unit`".to_string())?;
    if unit != "ns" {
        return Err(format!("unexpected time_unit {unit:?}"));
    }
    doc.get("totals").ok_or("missing field `totals`".to_string())?;
    doc.get("warnings")
        .and_then(|v| v.as_arr())
        .ok_or("missing array field `warnings`".to_string())?;
    let runs =
        doc.get("runs").and_then(|v| v.as_arr()).ok_or("missing array field `runs`".to_string())?;
    for (i, run) in runs.iter().enumerate() {
        run.get("label")
            .and_then(|v| v.as_str())
            .ok_or(format!("run {i}: missing string field `label`"))?;
        run.get("counters").ok_or(format!("run {i}: missing field `counters`"))?;
        let events = run
            .get("events")
            .and_then(|v| v.as_arr())
            .ok_or(format!("run {i}: missing array field `events`"))?;
        for (j, event) in events.iter().enumerate() {
            event
                .get("at_ns")
                .and_then(|v| v.as_num())
                .ok_or(format!("run {i} event {j}: missing numeric field `at_ns`"))?;
        }
    }
    Ok(format!("{path}: valid arpshield-trace/1 manifest with {} run(s)", runs.len()))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("validate-trace") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: reproduce validate-trace FILE");
            std::process::exit(2);
        };
        match validate_trace_manifest(path) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut out_dir = PathBuf::from("results");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        if pos < args.len() {
            out_dir = PathBuf::from(args.remove(pos));
        }
    }
    let mut trace = false;
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        args.remove(pos);
        trace = true;
    }
    fs::create_dir_all(&out_dir).ok();
    let out = Output { out_dir, trace };
    let selected: Vec<String> = args.iter().map(|a| a.to_lowercase()).collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!("arpshield reproduction harness (seed {SEED})");
    println!(
        "every experiment is deterministic; CSVs land in {}/; \
         independent runs fan out over {} worker thread(s) \
         (ARPSHIELD_THREADS overrides; output is identical at any count)\n",
        out.out_dir.display(),
        arpshield_core::parallel::thread_count(),
    );
    let started = Instant::now();

    if want("t1") {
        out.table("t1", || taxonomy::table());
    }
    if want("t2") {
        out.table("t2", || t2_susceptibility(SEED));
    }
    if want("t3") {
        out.table("t3", || t3_coverage(SEED));
    }
    if want("t4") {
        out.table("t4", || t4_false_positives(SEED));
    }
    if want("t5") {
        out.table("t5", || t5_cost(SEED));
    }
    if want("t5r") {
        out.table("t5r", || t5_resilience(SEED));
    }
    if want("t6") {
        out.table("t6", || t6_dos_coverage(SEED));
    }
    if want("f1") {
        out.series("f1", || f1_detection_latency(SEED, 30));
    }
    if want("f2") {
        out.series("f2", || f2_overhead(SEED, &[5, 10, 20, 40, 80]));
    }
    if want("f3") {
        out.table("f3", || f3_resolution_latency(SEED));
    }
    if want("f4") {
        out.table("f4", || f4_poisoned_time(SEED));
    }
    if want("f5") {
        out.series("f5", || f5_passive_scale(SEED, &[5, 10, 20, 40, 80]));
    }
    if want("f6") {
        out.series("f6a", || f6_flood_dynamics(SEED));
        out.series("f6b", || vec![f6_starvation_dynamics(SEED)]);
    }

    println!("done in {:.1}s", started.elapsed().as_secs_f64());
}
