//! Regenerates every table and figure of the evaluation.
//!
//! ```text
//! reproduce            # run everything
//! reproduce t3 f1      # run a subset by id
//! reproduce --out DIR  # also write CSVs (default: results/)
//! ```

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use arpshield_core::experiment::{
    f1_detection_latency, f2_overhead, f3_resolution_latency, f4_poisoned_time, f5_passive_scale,
    f6_flood_dynamics, f6_starvation_dynamics, t2_susceptibility, t3_coverage, t4_false_positives,
    t5_cost, t5_resilience, t6_dos_coverage,
};
use arpshield_core::{taxonomy, Series, Table};

const SEED: u64 = 20070625; // the venue's year, as a nod

struct Output {
    out_dir: PathBuf,
}

impl Output {
    fn table(&self, id: &str, table: &Table) {
        println!("{}", table.render());
        let path = self.out_dir.join(format!("{id}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    fn series(&self, id: &str, series: &[Series]) {
        for (i, s) in series.iter().enumerate() {
            println!("{}", s.render());
            let path = self.out_dir.join(format!("{id}_{i}.csv"));
            if let Err(e) = fs::write(&path, s.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        if pos < args.len() {
            out_dir = PathBuf::from(args.remove(pos));
        }
    }
    fs::create_dir_all(&out_dir).ok();
    let out = Output { out_dir };
    let selected: Vec<String> = args.iter().map(|a| a.to_lowercase()).collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!("arpshield reproduction harness (seed {SEED})");
    println!(
        "every experiment is deterministic; CSVs land in {}/; \
         independent runs fan out over {} worker thread(s) \
         (ARPSHIELD_THREADS overrides; output is identical at any count)\n",
        out.out_dir.display(),
        arpshield_core::parallel::thread_count(),
    );
    let started = Instant::now();

    if want("t1") {
        out.table("t1", &taxonomy::table());
    }
    if want("t2") {
        out.table("t2", &t2_susceptibility(SEED));
    }
    if want("t3") {
        out.table("t3", &t3_coverage(SEED));
    }
    if want("t4") {
        out.table("t4", &t4_false_positives(SEED));
    }
    if want("t5") {
        out.table("t5", &t5_cost(SEED));
    }
    if want("t5r") {
        out.table("t5r", &t5_resilience(SEED));
    }
    if want("t6") {
        out.table("t6", &t6_dos_coverage(SEED));
    }
    if want("f1") {
        out.series("f1", &f1_detection_latency(SEED, 30));
    }
    if want("f2") {
        out.series("f2", &f2_overhead(SEED, &[5, 10, 20, 40, 80]));
    }
    if want("f3") {
        out.table("f3", &f3_resolution_latency(SEED));
    }
    if want("f4") {
        out.table("f4", &f4_poisoned_time(SEED));
    }
    if want("f5") {
        out.series("f5", &f5_passive_scale(SEED, &[5, 10, 20, 40, 80]));
    }
    if want("f6") {
        out.series("f6a", &f6_flood_dynamics(SEED));
        out.series("f6b", &[f6_starvation_dynamics(SEED)]);
    }

    println!("done in {:.1}s", started.elapsed().as_secs_f64());
}
