pub fn placeholder() {}
