//! Cost of the link-impairment layer on the frame delivery hot path.
//!
//! Three workloads over the same 16-port hub broadcast storm:
//! a perfect wire (the `is_perfect()` fast path — must stay as fast as
//! before impairments existed), an inert profile (a flap schedule that
//! never fires, forcing the impaired delivery path with zero-probability
//! draws), and a 10% lossy + duplicating + jittered profile (every draw
//! taken on every frame). The spread between the first two is the fixed
//! tax of the feature; the third bounds its worst case.

use std::time::Duration;

use arpshield_netsim::{
    Device, DeviceCtx, FlapSchedule, Hub, LinkProfile, PortId, SimTime, Simulator,
};
use arpshield_packet::{EtherType, EthernetFrame, MacAddr};
use arpshield_testkit::{Criterion, Throughput};

const PORTS: usize = 16;
const FRAMES: u64 = 64;

/// Emits `FRAMES` broadcast frames, one per microsecond.
struct Blaster {
    remaining: u64,
    payload: Vec<u8>,
}

impl Blaster {
    fn new() -> Self {
        let payload = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_index(1),
            EtherType::Other(0x1234),
            vec![0xAB; 242],
        )
        .encode();
        Blaster { remaining: FRAMES, payload }
    }
}

impl Device for Blaster {
    fn name(&self) -> &str {
        "blaster"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(Duration::from_micros(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, _token: u64) {
        ctx.send(PortId(0), self.payload.clone());
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_in(Duration::from_micros(1), 0);
        }
    }
    fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
}

struct Sink;

impl Device for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, frame: &[u8]) {
        std::hint::black_box(frame.len());
    }
}

fn run_hub_broadcast(profile: Option<LinkProfile>) -> u64 {
    let mut sim = Simulator::new(1);
    if let Some(p) = profile {
        sim.set_default_impairment(p);
    }
    let hub = sim.add_device(Box::new(Hub::new("hub", PORTS)));
    let src = sim.add_device(Box::new(Blaster::new()));
    sim.connect(src, PortId(0), hub, PortId(0), Duration::from_micros(1)).unwrap();
    for p in 1..PORTS as u16 {
        let s = sim.add_device(Box::new(Sink));
        sim.connect(s, PortId(0), hub, PortId(p), Duration::from_micros(1)).unwrap();
    }
    sim.run_until(SimTime::from_secs(1));
    sim.wire_stats().frames
}

fn inert_profile() -> LinkProfile {
    // Not `is_perfect()` — the flap forces the impaired path — but no
    // draw can ever alter a delivery.
    LinkProfile::default().with_flap(FlapSchedule {
        offset: Duration::from_secs(3600),
        down_for: Duration::from_secs(1),
        period: Duration::from_secs(7200),
    })
}

fn lossy_profile() -> LinkProfile {
    LinkProfile::default().with_loss(0.10).with_dup(0.05).with_jitter(Duration::from_micros(3))
}

fn bench_impaired(c: &mut Criterion) {
    let mut group = c.benchmark_group("impaired_delivery");
    group.sample_size(15);
    group.throughput(Throughput::Elements(FRAMES * PORTS as u64));
    group.bench_function("hub16/perfect_wire", |b| b.iter(|| run_hub_broadcast(None)));
    group.bench_function("hub16/inert_profile", |b| {
        b.iter(|| run_hub_broadcast(Some(inert_profile())))
    });
    group.bench_function("hub16/lossy_10pct", |b| {
        b.iter(|| run_hub_broadcast(Some(lossy_profile())))
    });
    group.finish();
}

fn main() {
    // Sanity: the inert profile must deliver exactly what the perfect
    // wire does, and the lossy one must actually drop frames.
    assert_eq!(run_hub_broadcast(None), run_hub_broadcast(Some(inert_profile())));
    assert!(run_hub_broadcast(Some(lossy_profile())) < run_hub_broadcast(None));

    let mut criterion = Criterion::default();
    bench_impaired(&mut criterion);
    criterion.final_summary();
}
