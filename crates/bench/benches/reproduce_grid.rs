//! End-to-end throughput of the experiment grids the `reproduce` binary
//! spends its time in: the T3 scheme × attack coverage matrix and the
//! F1 detection-latency sweep.
//!
//! Each grid is benched under `ARPSHIELD_THREADS=1` (forced sequential)
//! and `=4`, which is how the parallel experiment runner's speedup — and
//! its determinism contract (identical output either way) — lands in the
//! perf-trajectory feed.

use arpshield_core::experiment::{f1_detection_latency, t3_coverage};
use arpshield_testkit::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SEED: u64 = 20070625;

fn bench_grids(c: &mut Criterion) {
    let mut group = c.benchmark_group("reproduce_grid");
    group.sample_size(10);
    for threads in ["1", "4"] {
        std::env::set_var("ARPSHIELD_THREADS", threads);
        group.bench_function(BenchmarkId::new("t3_coverage", threads), |b| {
            b.iter(|| t3_coverage(SEED).to_csv())
        });
        group.bench_function(BenchmarkId::new("f1_latency_x10", threads), |b| {
            b.iter(|| f1_detection_latency(SEED, 10).len())
        });
    }
    std::env::remove_var("ARPSHIELD_THREADS");
    group.finish();
}

criterion_group!(benches, bench_grids);
criterion_main!(benches);
