//! Streaming-ingest throughput: pcapng blocks off a `Read` source,
//! through the zero-copy `EthernetView` parse, into a standalone
//! passive detector — the `reproduce ingest` hot path end to end.
//!
//! The workload is a synthetic in-memory capture of gratuitous ARP
//! traffic (every fourth frame 802.1Q-tagged, a handful of binding
//! flips so the detector raises a realistic trickle of alerts). The
//! acceptance floor for this path is one million frames per second
//! sustained; alongside the timing this bench counts heap allocations
//! per ingested frame with a counting global allocator and writes them
//! to `results/bench/ingest_throughput_allocs.json`, pinning the
//! near-zero-allocation claim the borrowed-view parse makes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use arpshield_netsim::SimTime;
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, MacAddr};
use arpshield_schemes::{Detector, SchemeKind};
use arpshield_testkit::{json, Criterion, Throughput};
use arpshield_trace::pcapng::{PcapngStream, PcapngWriter};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const FRAMES: u64 = 16_384;
const HOSTS: u32 = 64;
const FLIPS: u64 = 8;

/// A capture of `FRAMES` gratuitous ARP announcements from `HOSTS`
/// stable bindings, with `FLIPS` frames claiming a foreign MAC (the
/// poisonings the detector should flag) and every fourth frame tagged.
fn synthetic_capture() -> Vec<u8> {
    let mut writer = PcapngWriter::new("arpshield-bench");
    let interface = writer.add_interface("synthetic");
    for i in 0..FRAMES {
        let host = (i as u32) % HOSTS;
        let ip = Ipv4Addr::new(10, 0, (host >> 8) as u8, host as u8);
        let flip = i % (FRAMES / FLIPS) == FRAMES / FLIPS - 1;
        let mac = if flip { MacAddr::from_index(0xBAD) } else { MacAddr::from_index(host) };
        let arp = ArpPacket::gratuitous(ArpOp::Reply, mac, ip);
        let mut eth = EthernetFrame::new(MacAddr::BROADCAST, mac, EtherType::ARP, arp.encode());
        if i % 4 == 0 {
            eth = eth.with_vlan(100);
        }
        writer.add_packet(interface, i * 1_000, &eth.encode(), "");
    }
    writer.finish()
}

/// Streams the capture through a fresh passive detector; returns frames
/// ingested (checked against `FRAMES` so the workload can't silently
/// shrink).
fn ingest(capture: &[u8]) -> u64 {
    let mut stream = PcapngStream::new(capture);
    let mut detector = Detector::new(SchemeKind::Passive).expect("passive is supported");
    while let Some(pkt) = stream.next_packet().expect("synthetic capture is well-formed") {
        detector.observe(SimTime::from_nanos(pkt.ts_ns), pkt.bytes);
    }
    detector.finish();
    let stats = detector.stats();
    assert_eq!(stats.frames, FRAMES, "every frame must reach the detector");
    assert_eq!(stats.unparseable, 0);
    assert_eq!(stats.vlan_tagged, FRAMES.div_ceil(4));
    assert!(!detector.alerts().is_empty(), "the flips must be flagged");
    stats.frames
}

fn bench_ingest(c: &mut Criterion) {
    let capture = synthetic_capture();
    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(15);
    group.throughput(Throughput::Elements(FRAMES));
    group.bench_function("passive/synthetic16k", |b| b.iter(|| ingest(&capture)));
    group.finish();
}

fn write_alloc_report() {
    let capture = synthetic_capture();
    // Warm once so lazy one-time allocations don't pollute the count.
    let frames = ingest(&capture);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let again = ingest(&capture);
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(frames, again, "workload must be deterministic");
    let per_frame = allocs as f64 / frames as f64;
    println!(
        "ingest_throughput/passive  {allocs} allocations / {frames} frames = {per_frame:.4} \
         allocs/frame"
    );
    let mut obj = BTreeMap::new();
    obj.insert("id".to_string(), json::Value::Str("passive/synthetic16k".to_string()));
    obj.insert("allocations".to_string(), json::Value::Num(allocs as f64));
    obj.insert("frames_ingested".to_string(), json::Value::Num(frames as f64));
    obj.insert("allocs_per_frame".to_string(), json::Value::Num(per_frame));
    let mut doc = BTreeMap::new();
    doc.insert("schema".to_string(), json::Value::Str("arpshield-allocs-v1".to_string()));
    doc.insert("results".to_string(), json::Value::Arr(vec![json::Value::Obj(obj)]));
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let dir = root.join("results").join("bench");
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("ingest_throughput_allocs.json");
    let mut text = json::Value::Obj(doc).to_string();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => println!("alloc report written to {}", path.display()),
        Err(e) => eprintln!("failed to write alloc report: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_ingest(&mut criterion);
    criterion.final_summary();
    write_alloc_report();
}
