//! The calibration bench behind the `work` cost constants: what one
//! header inspection, one SHA-256, one Schnorr sign, and one verify
//! actually cost on this machine (F3's micro-level companion).

use arpshield_testkit::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use arpshield_crypto::{hmac_sha256, sha256, Akd, KeyPair};
use arpshield_packet::{ArpPacket, EthernetFrame, Ipv4Addr, MacAddr};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("sarp_crypto");

    // The baseline everything is normalized to: parse one ARP frame.
    let frame = EthernetFrame::new(
        MacAddr::BROADCAST,
        MacAddr::from_index(1),
        arpshield_packet::EtherType::ARP,
        ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        )
        .encode(),
    )
    .encode();
    group.bench_function("baseline_inspect_arp", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(black_box(&frame)).unwrap();
            ArpPacket::parse(&eth.payload).unwrap()
        })
    });

    let msg = b"10.0.0.1 is-at 02:00:00:00:00:64 @ t=123456789";
    group.throughput(Throughput::Bytes(msg.len() as u64));
    group.bench_function("sha256_short", |b| b.iter(|| sha256(black_box(msg))));
    group.bench_function("hmac_sha256_short", |b| b.iter(|| hmac_sha256(b"key", black_box(msg))));

    let kp = KeyPair::from_seed(42);
    group.bench_function("schnorr_sign", |b| b.iter(|| kp.sign(black_box(msg))));

    let sig = kp.sign(msg);
    let pk = kp.public_key();
    group.bench_function("schnorr_verify", |b| {
        b.iter(|| pk.verify(black_box(msg), black_box(&sig)).unwrap())
    });

    let mut akd = Akd::new();
    for i in 0..1000u32 {
        akd.register(i, KeyPair::from_seed(u64::from(i)).public_key());
    }
    group.bench_function("akd_lookup_1000", |b| b.iter(|| akd.lookup(black_box(512)).unwrap()));

    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
