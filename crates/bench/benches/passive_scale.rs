//! Passive-monitor database scalability: observation cost as the
//! station database grows (figure F5's micro-level companion).

use arpshield_testkit::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arpshield_netsim::SimTime;
use arpshield_packet::{Ipv4Addr, MacAddr};
use arpshield_schemes::{AlertLog, PassiveConfig, PassiveMonitor};

fn monitor_with_stations(n: u32) -> PassiveMonitor {
    let mut m = PassiveMonitor::new(PassiveConfig::default(), AlertLog::new());
    for i in 0..n {
        m.observe(
            SimTime::from_secs(1),
            Ipv4Addr::from_u32(0x0a00_0000 + i),
            MacAddr::from_index(i),
        );
    }
    m
}

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("passive_observe");
    for n in [10u32, 100, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("stable_binding", n), &n, |b, &n| {
            let mut m = monitor_with_stations(n);
            b.iter(|| {
                m.observe(
                    black_box(SimTime::from_secs(2)),
                    black_box(Ipv4Addr::from_u32(0x0a00_0000 + n / 2)),
                    black_box(MacAddr::from_index(n / 2)),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("flipping_binding", n), &n, |b, &n| {
            let mut m = monitor_with_stations(n);
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let mac = MacAddr::from_index(if flip { 999_999 } else { n / 2 });
                m.observe(SimTime::from_secs(2), Ipv4Addr::from_u32(0x0a00_0000 + n / 2), mac)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
