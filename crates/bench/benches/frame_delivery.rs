//! Per-frame delivery cost on broadcast-heavy topologies — the hot path
//! the shared-`Frame` substrate work targets.
//!
//! Three workloads: a 16-port hub repeating every ingress frame to 15
//! egress ports, a 16-port switch flooding broadcasts, and a VLAN-aware
//! switch flooding across mixed access/trunk ports (each ingress frame
//! is re-tagged at most once, then shared). Alongside the timed records
//! this bench counts heap allocations per delivered frame (via a
//! counting global allocator) and writes them to
//! `results/bench/frame_delivery_allocs.json`, so the allocation
//! trajectory is tracked the same way the latency trajectory is.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use arpshield_netsim::{
    eth_frame, Device, DeviceCtx, Hub, PortId, PortVlan, SimTime, Simulator, Switch, SwitchConfig,
    VlanSet,
};
use arpshield_packet::{EtherType, MacAddr};
use arpshield_testkit::{json, Criterion, Throughput};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PORTS: usize = 16;
const FRAMES: u64 = 64;

/// Emits `FRAMES` broadcast frames, one per microsecond, encoding each
/// in place into a recycled pool buffer: at steady state transmission
/// allocates nothing per frame.
struct Blaster {
    remaining: u64,
}

impl Blaster {
    fn new() -> Self {
        Blaster { remaining: FRAMES }
    }
}

impl Device for Blaster {
    fn name(&self) -> &str {
        "blaster"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.schedule_in(Duration::from_micros(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, _token: u64) {
        ctx.send(
            PortId(0),
            eth_frame(
                MacAddr::BROADCAST,
                MacAddr::from_index(1),
                EtherType::Other(0x1234),
                [0xAB; 242].as_slice(),
            ),
        );
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.schedule_in(Duration::from_micros(1), 0);
        }
    }
    fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
}

struct Sink;

impl Device for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn port_count(&self) -> usize {
        1
    }
    fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, frame: &[u8]) {
        std::hint::black_box(frame.len());
    }
}

/// One ingress + (PORTS-1) egress copies per emitted frame.
fn delivered_frames() -> u64 {
    FRAMES * PORTS as u64
}

/// Runs the workload and returns (allocations during delivery, frames
/// delivered). Fabric construction is excluded from the count: the gate
/// tracks the steady-state per-frame path, and setup costs would
/// otherwise drown it at this frame count.
fn run_hub_broadcast() -> (u64, u64) {
    let mut sim = Simulator::new(1);
    let hub = sim.add_device(Box::new(Hub::new("hub", PORTS)));
    let src = sim.add_device(Box::new(Blaster::new()));
    sim.connect(src, PortId(0), hub, PortId(0), Duration::from_micros(1)).unwrap();
    for p in 1..PORTS as u16 {
        let s = sim.add_device(Box::new(Sink));
        sim.connect(s, PortId(0), hub, PortId(p), Duration::from_micros(1)).unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_until(SimTime::from_secs(1));
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    (allocs, sim.wire_stats().frames)
}

fn run_switch_flood() -> (u64, u64) {
    let mut sim = Simulator::new(1);
    let (sw, _) = Switch::new("sw", SwitchConfig { ports: PORTS, ..Default::default() });
    let sw = sim.add_device(Box::new(sw));
    let src = sim.add_device(Box::new(Blaster::new()));
    sim.connect(src, PortId(0), sw, PortId(0), Duration::from_micros(1)).unwrap();
    for p in 1..PORTS as u16 {
        let s = sim.add_device(Box::new(Sink));
        sim.connect(s, PortId(0), sw, PortId(p), Duration::from_micros(1)).unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_until(SimTime::from_secs(1));
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    (allocs, sim.wire_stats().frames)
}

/// VLAN flood: untagged ingress on an access port fans out to 7 more
/// access ports (shared buffer, ingress bytes) and 8 trunk ports (one
/// pooled re-tag per ingress frame, then shared). The per-frame cost
/// of the tag rebuild is what this workload pins.
fn run_switch_vlan_flood() -> (u64, u64) {
    let mut sim = Simulator::new(1);
    let mut vlans = vec![PortVlan::Access { pvid: 10 }; PORTS / 2];
    vlans.extend(std::iter::repeat_n(
        PortVlan::Trunk { allowed: VlanSet::Only(vec![10]) },
        PORTS / 2,
    ));
    let (sw, _) =
        Switch::new("sw", SwitchConfig { ports: PORTS, vlans: Some(vlans), ..Default::default() });
    let sw = sim.add_device(Box::new(sw));
    let src = sim.add_device(Box::new(Blaster::new()));
    sim.connect(src, PortId(0), sw, PortId(0), Duration::from_micros(1)).unwrap();
    for p in 1..PORTS as u16 {
        let s = sim.add_device(Box::new(Sink));
        sim.connect(s, PortId(0), sw, PortId(p), Duration::from_micros(1)).unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_until(SimTime::from_secs(1));
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    (allocs, sim.wire_stats().frames)
}

fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_delivery");
    group.sample_size(15);
    group.throughput(Throughput::Elements(delivered_frames()));
    group.bench_function("hub16/broadcast", |b| b.iter(run_hub_broadcast));
    group.bench_function("switch16/flood", |b| b.iter(run_switch_flood));
    group.bench_function("switch16/vlan_flood", |b| b.iter(run_switch_vlan_flood));
    group.finish();
}

/// Runs `workload` once and reports heap allocations per delivered frame.
fn measure_allocs(workload: fn() -> (u64, u64)) -> (u64, u64) {
    // Warm once so the frame pool and other lazy one-time allocations
    // don't pollute the count.
    let (_, frames) = workload();
    let (allocs, again) = workload();
    assert_eq!(frames, again, "workload must be deterministic");
    (allocs, frames)
}

fn write_alloc_report() {
    let mut results = Vec::new();
    for (id, workload) in [
        ("hub16/broadcast", run_hub_broadcast as fn() -> (u64, u64)),
        ("switch16/flood", run_switch_flood),
        ("switch16/vlan_flood", run_switch_vlan_flood),
    ] {
        let (allocs, frames) = measure_allocs(workload);
        let mut obj = BTreeMap::new();
        obj.insert("id".to_string(), json::Value::Str(id.to_string()));
        obj.insert("allocations".to_string(), json::Value::Num(allocs as f64));
        obj.insert("frames_delivered".to_string(), json::Value::Num(frames as f64));
        obj.insert("allocs_per_frame".to_string(), json::Value::Num(allocs as f64 / frames as f64));
        println!(
            "frame_delivery/{id}  {allocs} allocations / {frames} frames = {:.2} allocs/frame",
            allocs as f64 / frames as f64
        );
        results.push(json::Value::Obj(obj));
    }
    let mut doc = BTreeMap::new();
    doc.insert("schema".to_string(), json::Value::Str("arpshield-allocs-v1".to_string()));
    doc.insert("results".to_string(), json::Value::Arr(results));
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let dir = root.join("results").join("bench");
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join("frame_delivery_allocs.json");
    let mut text = json::Value::Obj(doc).to_string();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => println!("alloc report written to {}", path.display()),
        Err(e) => eprintln!("failed to write alloc report: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_delivery(&mut criterion);
    criterion.final_summary();
    write_alloc_report();
}
