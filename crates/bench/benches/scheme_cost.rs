//! Wall-clock cost of simulating one attacked LAN-second under each
//! scheme — how expensive the defences make the *simulation*, which
//! tracks their packet-path work.

use std::time::Duration;

use arpshield_testkit::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arpshield_attacks::PoisonVariant;
use arpshield_core::scenario::{AttackScenario, ScenarioConfig};
use arpshield_schemes::SchemeKind;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_cost");
    group.sample_size(10);
    for scheme in SchemeKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let config = ScenarioConfig::new(99)
                        .with_hosts(4)
                        .with_scheme(scheme)
                        .with_duration(Duration::from_secs(4));
                    AttackScenario::poisoning(config, PoisonVariant::UnicastReply).run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
