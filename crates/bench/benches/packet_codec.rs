//! Throughput of the wire-format codecs every monitor runs per packet.

use arpshield_testkit::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use arpshield_packet::{
    ArpPacket, DhcpMessage, EtherType, EthernetFrame, IpProtocol, Ipv4Addr, Ipv4Packet, MacAddr,
    UdpDatagram,
};

fn arp_frame_bytes() -> Vec<u8> {
    let arp = ArpPacket::request(
        MacAddr::from_index(1),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
    );
    EthernetFrame::new(MacAddr::BROADCAST, MacAddr::from_index(1), EtherType::ARP, arp.encode())
        .encode()
}

fn udp_frame_bytes() -> Vec<u8> {
    let dgram = UdpDatagram::new(40_000, 7, vec![0xab; 256])
        .encode(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    let pkt = Ipv4Packet::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        IpProtocol::Udp,
        dgram,
    );
    EthernetFrame::new(
        MacAddr::from_index(2),
        MacAddr::from_index(1),
        EtherType::Ipv4,
        pkt.encode(),
    )
    .encode()
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_codec");

    let arp_bytes = arp_frame_bytes();
    group.throughput(Throughput::Bytes(arp_bytes.len() as u64));
    group.bench_function("parse_eth_arp", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(black_box(&arp_bytes)).unwrap();
            ArpPacket::parse(&eth.payload).unwrap()
        })
    });
    group.bench_function("encode_eth_arp", |b| b.iter(|| black_box(arp_frame_bytes())));

    let udp_bytes = udp_frame_bytes();
    group.throughput(Throughput::Bytes(udp_bytes.len() as u64));
    group.bench_function("parse_eth_ipv4_udp", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(black_box(&udp_bytes)).unwrap();
            let pkt = Ipv4Packet::parse(&eth.payload).unwrap();
            UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst).unwrap()
        })
    });

    let dhcp = DhcpMessage::discover(7, MacAddr::from_index(9)).encode();
    group.throughput(Throughput::Bytes(dhcp.len() as u64));
    group.bench_function("parse_dhcp_discover", |b| {
        b.iter(|| DhcpMessage::parse(black_box(&dhcp)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
