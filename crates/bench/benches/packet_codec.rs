//! Throughput of the wire-format codecs every monitor runs per packet.

use arpshield_testkit::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use arpshield_packet::{
    ArpPacket, DhcpMessage, EtherType, EthernetEmit, EthernetFrame, IpProtocol, Ipv4Addr, Ipv4Emit,
    Ipv4Packet, MacAddr, UdpDatagram, UdpEmit, WireEmit,
};

fn arp_frame_bytes() -> Vec<u8> {
    let arp = ArpPacket::request(
        MacAddr::from_index(1),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
    );
    EthernetFrame::new(MacAddr::BROADCAST, MacAddr::from_index(1), EtherType::ARP, arp.encode())
        .encode()
}

fn udp_frame_bytes() -> Vec<u8> {
    let dgram = UdpDatagram::new(40_000, 7, vec![0xab; 256])
        .encode(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    let pkt = Ipv4Packet::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        IpProtocol::Udp,
        dgram,
    );
    EthernetFrame::new(
        MacAddr::from_index(2),
        MacAddr::from_index(1),
        EtherType::Ipv4,
        pkt.encode(),
    )
    .encode()
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_codec");

    let arp_bytes = arp_frame_bytes();
    group.throughput(Throughput::Bytes(arp_bytes.len() as u64));
    group.bench_function("parse_eth_arp", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(black_box(&arp_bytes)).unwrap();
            ArpPacket::parse(&eth.payload).unwrap()
        })
    });
    group.bench_function("encode_eth_arp", |b| b.iter(|| black_box(arp_frame_bytes())));

    let udp_bytes = udp_frame_bytes();
    group.throughput(Throughput::Bytes(udp_bytes.len() as u64));
    group.bench_function("parse_eth_ipv4_udp", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(black_box(&udp_bytes)).unwrap();
            let pkt = Ipv4Packet::parse(&eth.payload).unwrap();
            UdpDatagram::parse(&pkt.payload, pkt.src, pkt.dst).unwrap()
        })
    });

    let dhcp = DhcpMessage::discover(7, MacAddr::from_index(9)).encode();
    group.throughput(Throughput::Bytes(dhcp.len() as u64));
    group.bench_function("parse_dhcp_discover", |b| {
        b.iter(|| DhcpMessage::parse(black_box(&dhcp)).unwrap())
    });

    group.finish();
}

/// Head-to-head of the two encode paths: the legacy owned builders
/// (`encode()` → fresh `Vec` per layer) against the in-place emitters
/// writing one pass into a caller-provided buffer — the gap these two
/// measure is exactly what the zero-copy TX redesign removes per frame.
fn bench_encode_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_encode");

    let arp = ArpPacket::request(
        MacAddr::from_index(1),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
    );
    let arp_emit =
        EthernetEmit::new(MacAddr::BROADCAST, MacAddr::from_index(1), EtherType::ARP, &arp);
    let arp_len = arp_emit.wire_len();
    group.throughput(Throughput::Bytes(arp_len as u64));
    group.bench_function("eth_arp/owned", |b| {
        b.iter(|| {
            EthernetFrame::new(
                MacAddr::BROADCAST,
                MacAddr::from_index(1),
                EtherType::ARP,
                black_box(&arp).encode(),
            )
            .encode()
        })
    });
    let mut buf = vec![0u8; arp_len];
    group.bench_function("eth_arp/in_place", |b| {
        b.iter(|| black_box(&arp_emit).emit(black_box(&mut buf)))
    });

    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let payload = [0xab_u8; 256];
    let udp_emit = UdpEmit::new(40_000, 7, src, dst, payload.as_slice());
    let ip_emit = Ipv4Emit::new(src, dst, IpProtocol::Udp, &udp_emit);
    let frame_emit = EthernetEmit::new(
        MacAddr::from_index(2),
        MacAddr::from_index(1),
        EtherType::Ipv4,
        &ip_emit,
    );
    let udp_len = frame_emit.wire_len();
    group.throughput(Throughput::Bytes(udp_len as u64));
    group.bench_function("eth_ipv4_udp/owned", |b| {
        b.iter(|| {
            let dgram = UdpDatagram::new(40_000, 7, black_box(&payload).to_vec()).encode(src, dst);
            let pkt = Ipv4Packet::new(src, dst, IpProtocol::Udp, dgram);
            EthernetFrame::new(
                MacAddr::from_index(2),
                MacAddr::from_index(1),
                EtherType::Ipv4,
                pkt.encode(),
            )
            .encode()
        })
    });
    let mut buf = vec![0u8; udp_len];
    group.bench_function("eth_ipv4_udp/in_place", |b| {
        b.iter(|| black_box(&frame_emit).emit(black_box(&mut buf)))
    });

    let dhcp = DhcpMessage::discover(7, MacAddr::from_index(9));
    let dhcp_len = dhcp.wire_len();
    group.throughput(Throughput::Bytes(dhcp_len as u64));
    group.bench_function("dhcp_discover/owned", |b| b.iter(|| black_box(&dhcp).encode()));
    let mut buf = vec![0u8; dhcp_len];
    group.bench_function("dhcp_discover/in_place", |b| {
        b.iter(|| black_box(&dhcp).emit(black_box(&mut buf)))
    });

    group.finish();
}

criterion_group!(benches, bench_codecs, bench_encode_paths);
criterion_main!(benches);
