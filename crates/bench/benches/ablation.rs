//! Ablations of the design choices DESIGN.md calls out: what each
//! feature of the stateful monitor costs, and what the active prober's
//! window size trades.

use std::time::Duration;

use arpshield_testkit::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arpshield_netsim::SimTime;
use arpshield_packet::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, MacAddr};
use arpshield_schemes::{AlertLog, StatefulConfig, StatefulMonitor};

fn traffic(n: usize) -> Vec<(SimTime, EthernetFrame)> {
    // A deterministic mixed stream: requests, matched replies, and the
    // occasional unsolicited forgery.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = SimTime::from_micros(i as u64 * 700);
        let a = (i % 16) as u32 + 1;
        let b = ((i + 5) % 16) as u32 + 1;
        let frame = if i % 3 == 0 {
            let req = ArpPacket::request(
                MacAddr::from_index(a),
                Ipv4Addr::new(10, 0, 0, a as u8),
                Ipv4Addr::new(10, 0, 0, b as u8),
            );
            EthernetFrame::new(MacAddr::BROADCAST, req.sender_mac, EtherType::ARP, req.encode())
        } else {
            let rep = ArpPacket {
                op: ArpOp::Reply,
                sender_mac: MacAddr::from_index(b),
                sender_ip: Ipv4Addr::new(10, 0, 0, b as u8),
                target_mac: MacAddr::from_index(a),
                target_ip: Ipv4Addr::new(10, 0, 0, a as u8),
            };
            EthernetFrame::new(rep.target_mac, rep.sender_mac, EtherType::ARP, rep.encode())
        };
        out.push((t, frame));
    }
    out
}

fn bench_stateful_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("stateful_ablation");
    let stream = traffic(2048);
    let configs: [(&str, StatefulConfig); 4] = [
        ("full", StatefulConfig::default()),
        ("no_l2_check", StatefulConfig { check_l2_consistency: false, ..Default::default() }),
        ("no_binding_db", StatefulConfig { track_bindings: false, ..Default::default() }),
        (
            "reply_matching_only",
            StatefulConfig {
                check_l2_consistency: false,
                track_bindings: false,
                ..Default::default()
            },
        ),
    ];
    for (label, config) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| replay(*config, &stream))
        });
    }
    group.finish();
}

/// Replays the stream through a minimal one-device simulation.
fn replay(config: StatefulConfig, stream: &[(SimTime, EthernetFrame)]) -> usize {
    use arpshield_netsim::{Device, DeviceCtx, PortId, Simulator};
    // Drive the monitor through a replayer device that forwards the
    // pre-encoded frames at their timestamps.
    struct Player {
        frames: Vec<(SimTime, Vec<u8>)>,
        idx: usize,
    }
    impl Device for Player {
        fn name(&self) -> &str {
            "player"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            ctx.schedule_in(Duration::from_micros(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, _t: u64) {
            while self.idx < self.frames.len() {
                let (at, bytes) = &self.frames[self.idx];
                if *at > ctx.now() {
                    ctx.schedule_in((*at).saturating_since(ctx.now()), 0);
                    return;
                }
                ctx.send(PortId(0), bytes.clone());
                self.idx += 1;
            }
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
    }
    let log = AlertLog::new();
    let mut sim = Simulator::new(1);
    let player = sim.add_device(Box::new(Player {
        frames: stream.iter().map(|(t, f)| (*t, f.encode())).collect(),
        idx: 0,
    }));
    let monitor = sim.add_device(Box::new(StatefulMonitor::new(config, log.clone())));
    sim.connect(player, PortId(0), monitor, PortId(0), Duration::from_micros(1)).unwrap();
    sim.run_until(SimTime::from_secs(5));
    log.len()
}

criterion_group!(benches, bench_stateful_ablation);
criterion_main!(benches);
