//! CAM-table mechanics under flood load: learn/sweep micro-costs and a
//! full one-second macof burst through the simulator (figure F6's
//! wall-clock companion).

use std::time::Duration;

use arpshield_testkit::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arpshield_attacks::{GroundTruth, MacFlooder, MacFlooderConfig};
use arpshield_netsim::{CamTable, PortId, SimTime, Simulator, Switch, SwitchConfig};
use arpshield_packet::MacAddr;

fn bench_cam(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_table");

    group.bench_function("learn_fresh_into_full_1024", |b| {
        let mut cam = CamTable::new(1024, Duration::from_secs(300));
        for i in 0..1024u32 {
            cam.learn(SimTime::ZERO, MacAddr::from_index(i), PortId(0));
        }
        let mut n = 1024u32;
        b.iter(|| {
            n += 1;
            black_box(cam.learn(SimTime::from_secs(1), MacAddr::from_index(n), PortId(1)))
        })
    });

    group.bench_function("sweep_1024_live", |b| {
        let mut cam = CamTable::new(1024, Duration::from_secs(300));
        for i in 0..1024u32 {
            cam.learn(SimTime::from_secs(1), MacAddr::from_index(i), PortId(0));
        }
        b.iter(|| black_box(cam.sweep(SimTime::from_secs(2))))
    });

    group.bench_function("macof_one_second", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(3);
            let (sw, handle) = Switch::new("sw", SwitchConfig { ports: 4, ..Default::default() });
            let sw = sim.add_device(Box::new(sw));
            let flooder = MacFlooder::new(
                MacFlooderConfig::macof_rate(MacAddr::from_index(66)),
                GroundTruth::new(),
            );
            let f = sim.add_device(Box::new(flooder));
            sim.connect(f, PortId(0), sw, PortId(0), Duration::from_micros(1)).unwrap();
            sim.run_until(SimTime::from_secs(1));
            let occupancy = handle.cam.borrow().occupancy();
            occupancy
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cam);
criterion_main!(benches);
