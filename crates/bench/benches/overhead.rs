//! Simulation scalability: wall-clock per simulated second as the LAN
//! grows (the engine behind figure F2's sweeps).

use std::time::Duration;

use arpshield_testkit::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arpshield_core::scenario::lan::build;
use arpshield_core::scenario::ScenarioConfig;
use arpshield_netsim::SimTime;

fn bench_lan_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scalability");
    group.sample_size(10);
    for n in [5usize, 20, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let config =
                    ScenarioConfig::new(7).with_hosts(n).with_duration(Duration::from_secs(3));
                let mut lan = build(config);
                lan.sim.run_until(SimTime::from_secs(3));
                lan.sim.wire_stats().frames
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lan_sizes);
criterion_main!(benches);
