//! Event-queue churn: the timing wheel against the binary heap it
//! replaced.
//!
//! The simulator's scheduler sees one workload shape almost
//! exclusively: a bounded set of in-flight events (frames on wires,
//! pending timers) where every pop schedules a successor a short delay
//! ahead — classic hold-model churn. A binary heap pays O(log n) in
//! comparisons *and* cache misses per operation at every size; the
//! hierarchical wheel pays O(1) slot arithmetic with an occasional
//! cascade. Both contenders live in this one bench so the committed
//! baseline pins the heap-vs-wheel ratio, not just the wheel's own
//! trajectory.
//!
//! Two shapes: `steady_churn` keeps every delay inside the wheel's
//! ~68.7 s horizon (the pure fast path), `mixed_horizon` sends one
//! push in 16 far beyond it, forcing traffic through the calendar
//! fallback the way a long CAM-aging timer rides alongside
//! microsecond frame deliveries.
//!
//! Every run folds the popped sequence into a checksum, and the two
//! implementations must produce the same one — the bench doubles as an
//! end-to-end ordering-equivalence check at a scale the unit tests
//! don't reach.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use arpshield_netsim::{SimTime, TimingWheel};
use arpshield_testkit::{Criterion, Throughput};

const IN_FLIGHT: usize = 4096;
const OPS: usize = 65_536;

/// xorshift64*: cheap, deterministic op-stream generator.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The simulator schedules almost everything a link latency ahead, and
/// a LAN has a handful of configured latencies, not a continuum — which
/// is why equal-timestamp batches dominate real runs.
const LATENCIES: [u64; 4] = [1_000, 5_000, 10_000, 25_000];

/// Delay for one push: a configured link latency, with an optional
/// 1-in-16 far-future tail that crosses the wheel horizon (a CAM-aging
/// timer riding alongside microsecond frame deliveries).
fn delay(rng: &mut Lcg, far_tail: bool) -> u64 {
    let raw = rng.next();
    if far_tail && raw % 16 == 0 {
        // ~100 s out: beyond the 2^36 ns horizon, onto the fallback.
        100_000_000_000 + raw % 1_000_000_000
    } else {
        LATENCIES[(raw % 4) as usize]
    }
}

/// The scheduler the wheel replaced: a min-heap on `(at, seq)`, the
/// sequence number supplying the equal-timestamp insertion-order
/// guarantee.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
}

impl HeapQueue {
    fn push(&mut self, at: u64, item: u32) {
        self.heap.push(Reverse((at, self.seq, item)));
        self.seq += 1;
    }
    fn pop(&mut self) -> Option<(u64, u32)> {
        self.heap.pop().map(|Reverse((at, _, item))| (at, item))
    }
}

fn fold(acc: u64, at: u64, item: u32) -> u64 {
    (acc ^ at.wrapping_add(u64::from(item))).rotate_left(7)
}

/// Hold-model churn through the heap: fill to `IN_FLIGHT`, then pop
/// one / push one for `OPS` operations, then drain.
fn churn_heap(far_tail: bool) -> u64 {
    let mut rng = Lcg(0x5EED_0001);
    let mut q = HeapQueue::default();
    let mut acc = 0u64;
    for i in 0..IN_FLIGHT {
        q.push(delay(&mut rng, far_tail), i as u32);
    }
    for i in 0..OPS {
        let (at, item) = q.pop().expect("queue stays full during churn");
        acc = fold(acc, at, item);
        q.push(at + delay(&mut rng, far_tail), i as u32);
    }
    while let Some((at, item)) = q.pop() {
        acc = fold(acc, at, item);
    }
    acc
}

/// The identical op stream through the timing wheel.
fn churn_wheel(far_tail: bool) -> u64 {
    let mut rng = Lcg(0x5EED_0001);
    let mut q: TimingWheel<u32> = TimingWheel::new();
    let mut acc = 0u64;
    for i in 0..IN_FLIGHT {
        q.push(SimTime::from_nanos(delay(&mut rng, far_tail)), i as u32);
    }
    for i in 0..OPS {
        let (at, item) = q.pop().expect("queue stays full during churn");
        let now = at.as_nanos();
        acc = fold(acc, now, item);
        q.push(SimTime::from_nanos(now + delay(&mut rng, far_tail)), i as u32);
    }
    while let Some((at, item)) = q.pop() {
        acc = fold(acc, at.as_nanos(), item);
    }
    acc
}

fn bench_churn(c: &mut Criterion) {
    // The wheel must agree with the reference ordering exactly; a
    // checksum mismatch here means the scheduler swap broke the
    // determinism contract, and no timing numbers would matter.
    assert_eq!(churn_wheel(false), churn_heap(false), "steady_churn ordering diverged");
    assert_eq!(churn_wheel(true), churn_heap(true), "mixed_horizon ordering diverged");

    let mut group = c.benchmark_group("event_queue_churn");
    group.sample_size(15);
    group.throughput(Throughput::Elements((IN_FLIGHT + OPS) as u64));
    group.bench_function("wheel/steady_churn", |b| {
        b.iter(|| std::hint::black_box(churn_wheel(false)))
    });
    group.bench_function("heap/steady_churn", |b| {
        b.iter(|| std::hint::black_box(churn_heap(false)))
    });
    group.bench_function("wheel/mixed_horizon", |b| {
        b.iter(|| std::hint::black_box(churn_wheel(true)))
    });
    group.bench_function("heap/mixed_horizon", |b| {
        b.iter(|| std::hint::black_box(churn_heap(true)))
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_churn(&mut criterion);
    criterion.final_summary();
}
