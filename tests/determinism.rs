//! Reproducibility: the whole point of a simulation-based evaluation is
//! that every number regenerates bit-identically from its seed.

use std::time::Duration;

use arpshield::analysis::experiment::{
    f1_detection_latency, t2_susceptibility, t3_coverage, t4_false_positives, t5_resilience,
    t6_scale_defended,
};
use arpshield::analysis::metrics::score_attack_run;
use arpshield::analysis::scenario::{AttackScenario, ScenarioConfig};
use arpshield::attacks::PoisonVariant;
use arpshield::schemes::SchemeKind;

fn full_run_fingerprint(seed: u64) -> (String, u64, u64) {
    let config = ScenarioConfig::new(seed)
        .with_hosts(5)
        .with_scheme(SchemeKind::Stateful)
        .with_duration(Duration::from_secs(8));
    let run = AttackScenario::poisoning(config, PoisonVariant::UnicastReply).run();
    let outcome = score_attack_run(&run);
    let wire = run.lan.sim.wire_stats();
    (format!("{outcome:?}"), wire.frames, wire.bytes)
}

#[test]
fn identical_seeds_identical_everything() {
    assert_eq!(full_run_fingerprint(1), full_run_fingerprint(1));
    assert_eq!(full_run_fingerprint(77), full_run_fingerprint(77));
}

#[test]
fn different_seeds_differ_in_detail() {
    // Qualitative outcomes are seed-stable...
    let a = full_run_fingerprint(1);
    let b = full_run_fingerprint(2);
    assert_eq!(a.0, b.0, "qualitative outcome is seed-stable");

    // ...while micro-timing genuinely varies: the traced frame schedule
    // (jittered app starts) differs between seeds.
    let schedule = |seed: u64| -> Vec<u64> {
        let mut lan =
            arpshield::analysis::scenario::lan::build(ScenarioConfig::new(seed).with_hosts(3));
        lan.sim.enable_trace();
        lan.sim.run_until(arpshield::netsim::SimTime::from_secs(2));
        lan.sim.trace().unwrap().frames().iter().take(30).map(|f| f.sent_at.as_nanos()).collect()
    };
    assert_ne!(schedule(1), schedule(2), "frame timing must vary with seed");
    assert_eq!(schedule(3), schedule(3), "and replay identically for one seed");
}

#[test]
fn tables_regenerate_identically() {
    assert_eq!(t2_susceptibility(9).to_csv(), t2_susceptibility(9).to_csv());
    assert_eq!(t4_false_positives(9).to_csv(), t4_false_positives(9).to_csv());
}

/// The parallel experiment runner merges results in index order, so a
/// T3-style grid (and an F1 latency sweep) must render byte-identically
/// whether it ran on one worker or four.
///
/// Setting `ARPSHIELD_THREADS` here cannot perturb the *other* tests in
/// this binary even though they share the process: thread count never
/// affects results — which is exactly what this test pins down.
#[test]
fn parallel_runner_matches_sequential_byte_for_byte() {
    let grid = |threads: &str| {
        std::env::set_var("ARPSHIELD_THREADS", threads);
        let t3 = t3_coverage(13).to_csv();
        let f1: Vec<String> =
            f1_detection_latency(13, 6).iter().map(|series| series.to_csv()).collect();
        std::env::remove_var("ARPSHIELD_THREADS");
        (t3, f1)
    };
    let sequential = grid("1");
    let parallel = grid("4");
    assert_eq!(sequential.0, parallel.0, "T3 grid must not depend on the worker count");
    assert_eq!(sequential.1, parallel.1, "F1 sweep must not depend on the worker count");
}

/// The impairment sweep draws every loss decision from per-event keyed
/// hashes, never from a shared RNG stream, so its output is
/// byte-identical whether the (scheme × loss) cells run on one worker
/// or four.
#[test]
fn resilience_sweep_is_thread_count_independent() {
    let run = |threads: &str| {
        std::env::set_var("ARPSHIELD_THREADS", threads);
        let csv = t5_resilience(13).to_csv();
        std::env::remove_var("ARPSHIELD_THREADS");
        csv
    };
    assert_eq!(run("1"), run("4"), "T5R must not depend on the worker count");
}

/// The defended scale sweep reports only simulated counters (wall-clock
/// diagnostics go to stderr), so its CSVs must render byte-identically
/// at any worker count — the same contract the undefended T6S smoke in
/// CI enforces with a directory diff.
#[test]
fn defended_scale_sweep_is_thread_count_independent() {
    let run = |threads: &str| {
        std::env::set_var("ARPSHIELD_THREADS", threads);
        let csvs: Vec<String> =
            t6_scale_defended(13, &[300, 900]).iter().map(|series| series.to_csv()).collect();
        std::env::remove_var("ARPSHIELD_THREADS");
        csvs
    };
    assert_eq!(run("1"), run("4"), "T6SD must not depend on the worker count");
}
