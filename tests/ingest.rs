//! Streaming capture ingest, end to end:
//!
//! 1. **Real-world frames don't break the pipeline**: VLAN-tagged ARP
//!    is inspected through the tag, jumbo and runt frames are counted
//!    and skipped, a truncated tail keeps every complete packet, and
//!    multi-section files restart interface numbering per section.
//! 2. **Streaming is faithful**: the constant-memory reader produces
//!    exactly what the whole-buffer parser produces, on arbitrary
//!    captures.
//! 3. **Re-ingest reproduces a live run**: feeding a monitor's recorded
//!    vantage back through a standalone detector yields the identical
//!    alert list and verdict counters the live simulation produced.

use std::sync::Arc;

use arpshield::analysis::scenario::{AttackScenario, ScenarioConfig};
use arpshield::attacks::PoisonVariant;
use arpshield::netsim::SimTime;
use arpshield::packet::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Addr, MacAddr};
use arpshield::schemes::{Detector, SchemeKind};
use arpshield::trace::pcapng::{self, PcapngStream, PcapngWriter};
use arpshield::trace::{install, TraceCollector, Tracer};
use arpshield_testkit::prelude::*;

fn gratuitous(mac: MacAddr, ip: Ipv4Addr) -> EthernetFrame {
    let arp = ArpPacket::gratuitous(ArpOp::Reply, mac, ip);
    EthernetFrame::new(MacAddr::BROADCAST, mac, EtherType::ARP, arp.encode())
}

/// Streams `capture` through a fresh detector of `kind`, feeding every
/// packet regardless of interface.
fn ingest_all(capture: &[u8], kind: SchemeKind) -> (Detector, Vec<String>) {
    let mut stream = PcapngStream::new(capture);
    let mut detector = Detector::new(kind).expect("supported scheme");
    while let Some(pkt) = stream.next_packet().expect("fixture must stream") {
        detector.observe(SimTime::from_nanos(pkt.ts_ns), pkt.bytes);
    }
    detector.finish();
    (detector, stream.warnings().to_vec())
}

#[test]
fn vlan_tagged_capture_detects_a_flip_through_the_tag() {
    let ip = Ipv4Addr::new(10, 0, 0, 7);
    let mut writer = PcapngWriter::new("fixture");
    let wire = writer.add_interface("wire");
    writer.add_packet(
        wire,
        1_000,
        &gratuitous(MacAddr::from_index(1), ip).with_vlan(42).encode(),
        "",
    );
    writer.add_packet(
        wire,
        2_000,
        &gratuitous(MacAddr::from_index(66), ip).with_vlan(42).encode(),
        "",
    );
    let (detector, warnings) = ingest_all(&writer.finish(), SchemeKind::Passive);
    assert!(warnings.is_empty());
    let stats = detector.stats();
    assert_eq!(stats.frames, 2);
    assert_eq!(stats.vlan_tagged, 2);
    assert_eq!(stats.arp, 2, "tagged ARP must be classified as ARP, not Other");
    let alerts = detector.alerts();
    assert_eq!(alerts.len(), 1, "the flip is visible through the 802.1Q tag");
    assert_eq!(alerts[0].subject_ip, Some(ip));
}

#[test]
fn jumbo_and_runt_frames_are_counted_not_fatal() {
    let ip = Ipv4Addr::new(10, 0, 0, 8);
    let mut writer = PcapngWriter::new("fixture");
    let wire = writer.add_interface("wire");
    // A jumbo-payload ARP-carrying frame, a runt, then a normal flip:
    // the detector must survive the weird ones and still judge the
    // normal ones.
    let mut jumbo = gratuitous(MacAddr::from_index(1), ip);
    jumbo.payload.resize(4000, 0);
    writer.add_packet(wire, 1_000, &jumbo.encode(), "");
    writer.add_packet(wire, 2_000, &[0xDE, 0xAD, 0xBE], "");
    writer.add_packet(wire, 3_000, &gratuitous(MacAddr::from_index(66), ip).encode(), "");
    let (detector, warnings) = ingest_all(&writer.finish(), SchemeKind::Passive);
    assert!(warnings.is_empty());
    let stats = detector.stats();
    assert_eq!(stats.frames, 3);
    assert_eq!(stats.jumbo, 1);
    assert_eq!(stats.unparseable, 1);
    assert_eq!(detector.alerts().len(), 1, "the flip after the weird frames is still caught");
}

#[test]
fn truncated_capture_keeps_complete_packets_and_warns() {
    let ip = Ipv4Addr::new(10, 0, 0, 9);
    let mut writer = PcapngWriter::new("fixture");
    let wire = writer.add_interface("wire");
    writer.add_packet(wire, 1_000, &gratuitous(MacAddr::from_index(1), ip).encode(), "");
    writer.add_packet(wire, 2_000, &gratuitous(MacAddr::from_index(66), ip).encode(), "");
    let full = writer.finish();
    // Cut mid-way through the final block, as a capture interrupted by
    // a crash or a full disk would be.
    let cut = &full[..full.len() - 7];
    let (detector, warnings) = ingest_all(cut, SchemeKind::Passive);
    assert_eq!(warnings.len(), 1, "the cut surfaces as a warning: {warnings:?}");
    assert!(warnings[0].contains("truncated"), "{warnings:?}");
    assert_eq!(detector.stats().frames, 1, "the complete packet before the cut is kept");
    // The strict whole-buffer parser still refuses the damaged file.
    assert!(pcapng::parse(cut).is_err());
}

#[test]
fn multi_section_capture_restarts_interface_numbering() {
    let ip = Ipv4Addr::new(10, 0, 0, 10);
    let mut first = PcapngWriter::new("day-one");
    let a = first.add_interface("alpha");
    first.add_packet(a, 1_000, &gratuitous(MacAddr::from_index(1), ip).encode(), "");
    let mut second = PcapngWriter::new("day-two");
    let b = second.add_interface("beta");
    // Local interface 0 again — in section two it must resolve to the
    // global "beta", not back to "alpha".
    second.add_packet(b, 2_000, &gratuitous(MacAddr::from_index(66), ip).encode(), "");
    let mut joined = first.finish();
    joined.extend_from_slice(&second.finish());

    let mut stream = PcapngStream::new(joined.as_slice());
    let mut seen = Vec::new();
    while let Some(pkt) = stream.next_packet().expect("concatenation must stream") {
        seen.push(pkt.interface);
    }
    assert_eq!(stream.interfaces(), ["alpha", "beta"]);
    assert_eq!(seen, [0, 1]);
    assert_eq!(stream.stats().sections, 2);

    // Both sections' frames reach a detector: the flip spans the files.
    let (detector, _) = ingest_all(&joined, SchemeKind::Passive);
    assert_eq!(detector.stats().frames, 2);
    assert_eq!(detector.alerts().len(), 1);
}

properties! {
    #[test]
    fn streaming_reader_agrees_with_whole_buffer_parse(
        packets in collection::vec(
            (any::<bool>(), any::<u32>(), collection::vec(any::<u8>(), 0..120),
             collection::vec(any::<u8>(), 0..16)),
            0..24),
    ) {
        let mut writer = PcapngWriter::new("property");
        let a = writer.add_interface("a");
        let b = writer.add_interface("b");
        for (second, ts, bytes, comment) in &packets {
            let comment: String =
                comment.iter().map(|c| char::from(b'a' + c % 26)).collect();
            writer.add_packet(
                if *second { b } else { a },
                u64::from(*ts),
                bytes,
                &comment,
            );
        }
        let capture = writer.finish();
        let whole = pcapng::parse(&capture).unwrap();
        let mut stream = PcapngStream::new(capture.as_slice());
        let mut streamed = Vec::new();
        while let Some(pkt) = stream.next_packet().unwrap() {
            streamed.push((pkt.interface, pkt.ts_ns, pkt.bytes.to_vec(), pkt.comment.to_string()));
        }
        prop_assert_eq!(stream.interfaces(), &whole.interfaces[..]);
        prop_assert!(stream.warnings().is_empty());
        prop_assert_eq!(streamed.len(), whole.packets.len());
        for (got, want) in streamed.iter().zip(&whole.packets) {
            prop_assert_eq!(got.0, want.interface);
            prop_assert_eq!(got.1, want.ts_ns);
            prop_assert_eq!(&got.2[..], &want.bytes[..]);
            prop_assert_eq!(got.3.as_str(), want.comment.as_str());
        }
    }
}

#[test]
fn reingesting_a_live_capture_reproduces_passive_verdicts() {
    // Live run: passive monitor watching a gratuitous-reply poisoning,
    // with the flight recorder sized so nothing is evicted.
    let collector = Arc::new(TraceCollector::with_capture(1 << 20));
    let live_alerts = {
        let _guard = install(collector.clone());
        let run = AttackScenario::poisoning(
            ScenarioConfig::new(31).with_hosts(3).with_scheme(SchemeKind::Passive),
            PoisonVariant::GratuitousReply,
        )
        .run();
        run.lan.alerts.alerts()
    };
    assert!(!live_alerts.is_empty(), "the live run must detect the forgery");
    let manifest = collector.manifest("live");
    let capture = manifest.to_pcapng();

    // Re-ingest from the passive monitor's vantage point: exactly the
    // frames the live simulation delivered to it, at the times it
    // received them.
    let reingest_collector = Arc::new(TraceCollector::new());
    let detector_alerts = {
        let _guard = install(reingest_collector.clone());
        let mut detector =
            Detector::with_tracer(SchemeKind::Passive, Tracer::for_current_run("reingest"))
                .expect("passive is supported");
        let mut stream = PcapngStream::new(capture.as_slice());
        while let Some(pkt) = stream.next_packet().expect("own captures must stream") {
            let dst = pkt
                .comment
                .split_whitespace()
                .find_map(|token| token.strip_prefix("dst="))
                .unwrap_or_default();
            if !dst.contains("passive-monitor") {
                continue;
            }
            detector.observe(SimTime::from_nanos(pkt.ts_ns), pkt.bytes);
        }
        detector.finish();
        detector.alerts()
    };

    assert_eq!(
        detector_alerts, live_alerts,
        "re-ingesting the monitor's vantage must reproduce the live alerts exactly"
    );

    // The verdict counters agree too, manifest to manifest.
    let verdict_sum = |csv: &str, label_marker: &str| -> u64 {
        csv.lines()
            .filter(|line| line.contains(label_marker) && line.contains(",scheme.verdict."))
            .filter_map(|line| line.rsplit(',').next()?.parse::<u64>().ok())
            .sum()
    };
    let live_csv = manifest.to_counters_csv();
    let reingest_csv = reingest_collector.manifest("reingest").to_counters_csv();
    let live_verdicts = verdict_sum(&live_csv, "scheme=passive");
    assert!(live_verdicts > 0);
    assert_eq!(verdict_sum(&reingest_csv, "reingest"), live_verdicts);
}
