//! The observability layer's two core promises, pinned end to end:
//!
//! 1. **Tracing is inert**: running an experiment under an installed
//!    trace collector produces byte-identical tables/figures to running
//!    it without one. Observation must never perturb the simulation.
//! 2. **Manifests are deterministic**: the manifest a traced experiment
//!    produces is byte-identical at any `ARPSHIELD_THREADS` setting —
//!    per-run recorders plus sorted sections erase scheduling order.

use std::sync::Arc;

use arpshield::analysis::experiment::{t2_susceptibility, t3_coverage};
use arpshield::analysis::scenario::{AttackScenario, ScenarioConfig};
use arpshield::attacks::PoisonVariant;
use arpshield::schemes::SchemeKind;
use arpshield::trace::{install, TraceCollector};

#[test]
fn tracing_does_not_perturb_experiment_output() {
    let plain = t2_susceptibility(21).to_csv();
    let collector = Arc::new(TraceCollector::new());
    let traced = {
        let _guard = install(collector.clone());
        t2_susceptibility(21).to_csv()
    };
    assert_eq!(plain, traced, "observation must never change the observed simulation");
    assert!(!collector.is_empty(), "the traced run must actually have recorded something");
}

#[test]
fn manifest_is_thread_count_independent() {
    let manifest = |threads: &str| {
        std::env::set_var("ARPSHIELD_THREADS", threads);
        let collector = Arc::new(TraceCollector::new());
        let csv = {
            let _guard = install(collector.clone());
            t3_coverage(21).to_csv()
        };
        std::env::remove_var("ARPSHIELD_THREADS");
        (csv, collector.manifest("t3").to_json())
    };
    let (csv_seq, manifest_seq) = manifest("1");
    let (csv_par, manifest_par) = manifest("4");
    assert_eq!(csv_seq, csv_par, "the experiment itself is thread-count independent");
    assert_eq!(manifest_seq, manifest_par, "and so is its trace manifest, byte for byte");
    assert!(manifest_seq.contains("scheme.verdict"), "defended cells must log verdicts");
}

#[test]
fn attack_run_manifest_carries_the_evidence_chain() {
    let collector = Arc::new(TraceCollector::new());
    {
        let _guard = install(collector.clone());
        let run = AttackScenario::poisoning(
            ScenarioConfig::new(31).with_hosts(3).with_scheme(SchemeKind::Passive),
            PoisonVariant::GratuitousReply,
        )
        .run();
        assert!(!run.lan.alerts.is_empty(), "passive scheme must detect the forgery");
    }
    let manifest = collector.manifest("attack-smoke");
    let json = manifest.to_json();
    assert_eq!(manifest.runs.len(), 1, "one simulated run, one manifest section");
    assert!(
        manifest.runs[0].label.contains("attack=gratuitous-reply"),
        "run label names the attack: {}",
        manifest.runs[0].label
    );
    for needle in [
        "\"scheme.verdict.binding_changed\"",
        "\"switch.learn.new\"",
        "\"host.cache.create\"",
        "subject_ip=10.0.0.1",
        "\"host.resolution_latency_ns\"",
    ] {
        assert!(json.contains(needle), "manifest must carry {needle}:\n{json}");
    }
    assert!(json.contains("\"at_ns\":"), "events must carry sim-time stamps");
}

#[test]
fn disabled_tracing_records_nothing() {
    // No collector installed: the whole layer must stay dormant.
    let run = AttackScenario::poisoning(
        ScenarioConfig::new(31).with_hosts(3).with_scheme(SchemeKind::Passive),
        PoisonVariant::GratuitousReply,
    )
    .run();
    assert!(!run.lan.tracer.is_enabled());
    assert!(!run.lan.alerts.is_empty());
}
