//! The flight recorder's promises, pinned end to end:
//!
//! 1. **Capture is inert**: arming the frame ring changes neither the
//!    experiment CSVs nor the simulation itself, and the exported
//!    pcapng + index are byte-identical at any `ARPSHIELD_THREADS`.
//! 2. **Verdicts carry provenance**: every `scheme.verdict.*` event in
//!    a captured attack run cites at least one frame, every cited
//!    frame survives ring eviction (pinning), and the pcapng parses
//!    back with one interface per run.
//! 3. **Capture off means nothing recorded**: sections hold no frames
//!    and manifests don't even mention them.

use std::sync::Arc;

use arpshield::analysis::experiment::t2_susceptibility;
use arpshield::analysis::scenario::{AttackScenario, ScenarioConfig};
use arpshield::attacks::PoisonVariant;
use arpshield::schemes::SchemeKind;
use arpshield::trace::{install, pcapng, TraceCollector};

#[test]
fn capture_is_inert_and_thread_count_independent() {
    let plain = t2_susceptibility(21).to_csv();

    let captured = |threads: &str| {
        std::env::set_var("ARPSHIELD_THREADS", threads);
        let collector = Arc::new(TraceCollector::with_capture(512));
        let csv = {
            let _guard = install(collector.clone());
            t2_susceptibility(21).to_csv()
        };
        std::env::remove_var("ARPSHIELD_THREADS");
        let manifest = collector.manifest("t2");
        (csv, manifest.to_pcapng(), manifest.to_capture_index())
    };
    let (csv_seq, pcap_seq, index_seq) = captured("1");
    let (csv_par, pcap_par, index_par) = captured("4");

    assert_eq!(plain, csv_seq, "arming the flight recorder must not change the experiment");
    assert_eq!(csv_seq, csv_par, "the experiment itself is thread-count independent");
    assert_eq!(pcap_seq, pcap_par, "pcapng export is byte-identical at any thread count");
    assert_eq!(index_seq, index_par, "capture index is byte-identical at any thread count");
    assert!(!pcap_seq.is_empty());
}

#[test]
fn attack_capture_pins_verdict_provenance() {
    let collector = Arc::new(TraceCollector::with_capture(64));
    {
        let _guard = install(collector.clone());
        let run = AttackScenario::poisoning(
            ScenarioConfig::new(31).with_hosts(3).with_scheme(SchemeKind::Passive),
            PoisonVariant::GratuitousReply,
        )
        .run();
        assert!(!run.lan.alerts.is_empty(), "passive scheme must detect the forgery");
    }
    let manifest = collector.manifest("attack-capture");
    assert_eq!(manifest.runs.len(), 1);
    let run = &manifest.runs[0];

    // A 64-frame ring on a 12-second poisoning run must wrap: eviction
    // is exercised, yet every frame a verdict cites is still here.
    assert!(run.frames_evicted > 0, "ring must have wrapped (capacity 64)");
    assert!(!run.frames.is_empty());
    let ids: std::collections::HashSet<u64> = run.frames.iter().map(|f| f.id).collect();
    let verdicts: Vec<_> =
        run.events.iter().filter(|e| e.category.starts_with("scheme.verdict")).collect();
    assert!(!verdicts.is_empty(), "the attack run must log verdicts");
    for verdict in &verdicts {
        assert!(
            !verdict.frames.is_empty(),
            "every verdict must cite its provenance frames: {verdict:?}"
        );
        for id in &verdict.frames {
            assert!(ids.contains(id), "cited frame #{id} must survive eviction");
            let frame = run.frames.iter().find(|f| f.id == *id).unwrap();
            assert!(frame.pinned, "cited frame #{id} must be pinned");
        }
    }

    // The export round-trips through the stand-alone parser with one
    // named interface per run and every packet's octets intact.
    let parsed = pcapng::parse(&manifest.to_pcapng()).expect("export must parse back");
    assert_eq!(parsed.interfaces, vec![run.label.clone()]);
    assert_eq!(parsed.packets.len(), run.frames.len());
    for (packet, frame) in parsed.packets.iter().zip(&run.frames) {
        assert_eq!(packet.ts_ns, frame.at_ns);
        assert_eq!(packet.bytes, frame.bytes, "octets survive the pcapng round-trip");
        assert!(packet.comment.contains(&format!("id={}", frame.id)));
    }

    let index = manifest.to_capture_index();
    assert!(index.contains("\"arpshield-capture/1\""));
    assert!(index.contains("\"scheme.verdict\""));
    assert!(index.contains("kind=binding_changed"));
}

#[test]
fn capture_off_records_no_frames() {
    let collector = Arc::new(TraceCollector::new());
    {
        let _guard = install(collector.clone());
        AttackScenario::poisoning(
            ScenarioConfig::new(31).with_hosts(3).with_scheme(SchemeKind::Passive),
            PoisonVariant::GratuitousReply,
        )
        .run();
    }
    let manifest = collector.manifest("no-capture");
    for run in &manifest.runs {
        assert!(run.frames.is_empty(), "no capture requested, no frames recorded");
        assert_eq!(run.frames_evicted, 0);
        assert!(!run.body.contains("\"frames\":"), "trace-only manifests must not mention frames");
    }
    assert!(!manifest.to_json().contains("\"frames\":"));
}
