//! End-to-end assertions on the coverage matrix (T3): the qualitative
//! conclusions of the analysis, checked cell by cell against live runs.

use std::time::Duration;

use arpshield::analysis::metrics::{score_attack_run, AttackOutcome};
use arpshield::analysis::scenario::{AttackScenario, ScenarioConfig};
use arpshield::attacks::PoisonVariant;
use arpshield::host::ArpPolicy;
use arpshield::schemes::SchemeKind;

fn run_cell(scheme: SchemeKind, variant: PoisonVariant) -> AttackOutcome {
    let config = ScenarioConfig::new(0xC0FFEE)
        .with_hosts(4)
        .with_scheme(scheme)
        .with_policy(ArpPolicy::Promiscuous)
        .with_duration(Duration::from_secs(10))
        .with_arp_timeout(Duration::from_secs(4));
    score_attack_run(&AttackScenario::poisoning(config, variant).run())
}

/// Baseline: everything lands, nothing is noticed.
#[test]
fn baseline_misses_everything() {
    for variant in PoisonVariant::all() {
        let o = run_cell(SchemeKind::None, variant);
        assert!(!o.prevented, "{variant}: baseline cannot prevent");
        assert!(!o.detected, "{variant}: baseline cannot detect");
    }
}

/// Static entries prevent every variant — the oldest scheme is the most
/// complete, which is exactly why its management cost matters.
#[test]
fn static_arp_prevents_everything() {
    for variant in PoisonVariant::all() {
        let o = run_cell(SchemeKind::StaticArp, variant);
        assert!(o.prevented, "{variant}: static entries must hold");
        assert_eq!(o.poisoned_fraction, 0.0);
    }
}

/// The passive monitor detects every variant (they all flip a binding it
/// has already learned) but prevents none.
#[test]
fn passive_detects_all_prevents_none() {
    for variant in PoisonVariant::all() {
        let o = run_cell(SchemeKind::Passive, variant);
        assert!(o.detected, "{variant}: the flip must be seen");
        assert!(!o.prevented, "{variant}: alarms do not heal caches");
    }
}

/// Anticap's precise coverage boundary: unsolicited *replies* are
/// stopped; request-borne forgery and the solicited race get through.
#[test]
fn anticap_boundary() {
    for (variant, should_prevent) in [
        (PoisonVariant::GratuitousReply, true),
        (PoisonVariant::UnicastReply, true),
        (PoisonVariant::BlackholeDos, true),
        (PoisonVariant::GratuitousRequest, false),
        (PoisonVariant::UnicastRequestProbeStuffing, false),
        (PoisonVariant::ReplyToRequestRace, false),
    ] {
        let o = run_cell(SchemeKind::Anticap, variant);
        assert_eq!(
            o.prevented, should_prevent,
            "{variant}: anticap prevention boundary violated (outcome {o:?})"
        );
    }
}

/// Antidote defends any *live* incumbent binding, whatever the delivery
/// variant.
#[test]
fn antidote_defends_live_incumbents() {
    for variant in [
        PoisonVariant::GratuitousReply,
        PoisonVariant::UnicastReply,
        PoisonVariant::GratuitousRequest,
        PoisonVariant::BlackholeDos,
    ] {
        let o = run_cell(SchemeKind::Antidote, variant);
        assert!(o.prevented, "{variant}: incumbent was alive, takeover must fail");
        assert!(o.detected, "{variant}: the rejected takeover is reported");
    }
}

/// The cryptographic schemes and the switch-fabric scheme prevent every
/// variant — the paper's "complete" answers, each with its own cost.
#[test]
fn sarp_tarp_and_dai_prevent_everything() {
    for scheme in [SchemeKind::SArp, SchemeKind::Tarp, SchemeKind::Dai] {
        for variant in PoisonVariant::all() {
            let o = run_cell(scheme, variant);
            assert!(o.prevented, "{scheme}/{variant}: must prevent (outcome {o:?})");
            assert!(
                o.victim_delivery > 0.9,
                "{scheme}/{variant}: protection must not break service ({})",
                o.victim_delivery
            );
        }
    }
}

/// Port security does nothing about binding forgery — it solves a
/// different problem (flooding).
#[test]
fn port_security_orthogonal_to_poisoning() {
    let o = run_cell(SchemeKind::PortSecurity, PoisonVariant::GratuitousReply);
    assert!(!o.prevented);
    assert!(!o.detected);
}

/// Detection latencies order as the mechanisms predict: passive/stateful
/// flag the first forged frame almost instantly, the prober pays its
/// probe window.
#[test]
fn detection_latency_ordering() {
    let passive =
        run_cell(SchemeKind::Passive, PoisonVariant::GratuitousReply).detection_latency.unwrap();
    let probe = run_cell(SchemeKind::ActiveProbe, PoisonVariant::GratuitousReply)
        .detection_latency
        .unwrap();
    assert!(passive < Duration::from_millis(5), "passive latency {passive:?}");
    assert!(
        probe >= Duration::from_millis(250) && probe <= Duration::from_millis(500),
        "probe latency should be dominated by its 300 ms window, got {probe:?}"
    );
}
