//! Profiler invariants: arming the wall-clock profiler cannot change a
//! single deterministic byte, its merged tree has the same shape at any
//! worker count, and merging per-thread trees is order-independent —
//! the property that makes the merged profile scheduling-proof.

use std::sync::Arc;

use arpshield::analysis::experiment::{t2_susceptibility, t3_coverage};
use arpshield::trace::profile;
use arpshield::trace::{GaugeStats, ProfileCollector, ProfileData, SpanStats};
use arpshield_testkit::prelude::*;

/// A run under the profiler must render the same CSV as a bare run, and
/// must actually have recorded spans (the instrumentation is live, not
/// compiled away).
#[test]
fn legacy_csvs_identical_with_and_without_profiler() {
    let plain = t2_susceptibility(9).to_csv();
    let collector = Arc::new(ProfileCollector::new());
    let profiled = {
        let _guard = profile::install(collector.clone());
        t2_susceptibility(9).to_csv()
    };
    assert_eq!(plain, profiled, "profiling must not perturb experiment output");
    let data = collector.snapshot();
    assert!(!data.spans.is_empty(), "the profiled run records spans");
    assert!(
        data.spans.keys().any(|path| path.starts_with("sim.")),
        "simulator spans present: {:?}",
        data.spans.keys().collect::<Vec<_>>(),
    );
}

/// The merged profile's *shape* — span paths and call counts — is a
/// deterministic function of the workload, independent of how jobs were
/// scheduled across workers. Only the wall-clock figures may differ.
///
/// Setting `ARPSHIELD_THREADS` here cannot perturb the other tests in
/// this binary even though they share the process: thread count never
/// affects deterministic output (see `determinism.rs`), and the CSV
/// comparison below pins that down again under the profiler.
#[test]
fn profile_shape_is_thread_count_invariant() {
    let run = |threads: &str| {
        std::env::set_var("ARPSHIELD_THREADS", threads);
        let collector = Arc::new(ProfileCollector::new());
        let csv = {
            let _guard = profile::install(collector.clone());
            t3_coverage(13).to_csv()
        };
        std::env::remove_var("ARPSHIELD_THREADS");
        (csv, collector.snapshot())
    };
    let (csv_seq, data_seq) = run("1");
    let (csv_par, data_par) = run("4");
    assert_eq!(csv_seq, csv_par, "profiled CSVs must not depend on the worker count");
    let shape = |data: &ProfileData| -> Vec<(String, u64)> {
        data.spans.iter().map(|(path, stats)| (path.clone(), stats.count)).collect()
    };
    assert_eq!(shape(&data_seq), shape(&data_par), "span paths and counts are scheduling-proof");
}

// ---------------------------------------------------------------------
// Merge algebra.
// ---------------------------------------------------------------------

/// Builds a [`ProfileData`] from compact generated tuples. Span paths
/// and gauge names draw from a small alphabet so generated profiles
/// genuinely collide on keys — the interesting case for merging.
fn profile_from(spans: &[[u32; 4]], gauges: &[[u32; 2]]) -> ProfileData {
    const NAMES: [&str; 4] = ["sim.run", "sim.run/wheel.pop", "switch.forward", "pool.acquire"];
    let mut data = ProfileData::default();
    for &[name, count, total, child] in spans {
        let entry = data
            .spans
            .entry(NAMES[name as usize % NAMES.len()].to_string())
            .or_insert(SpanStats { count: 0, total_ns: 0, child_ns: 0 });
        entry.count += u64::from(count);
        entry.total_ns += u64::from(total);
        // Keep the self-time invariant (child <= total) per contribution.
        entry.child_ns += u64::from(child.min(total));
    }
    for &[name, value] in gauges {
        data.gauges
            .entry(format!("gauge.{}", name % 3))
            .and_modify(|g| g.sample(u64::from(value)))
            .or_insert_with(|| {
                let mut g = GaugeStats::default();
                g.sample(u64::from(value));
                g
            });
    }
    data
}

fn merged(parts: &[&ProfileData]) -> ProfileData {
    let mut out = ProfileData::default();
    for part in parts {
        out.merge(part);
    }
    out
}

properties! {
    /// Flushing thread-local trees into the shared collector happens in
    /// whatever order threads finish, so the merge must be associative
    /// and commutative — otherwise `ARPSHIELD_THREADS` would leak into
    /// the report.
    #[test]
    fn profile_merge_is_associative_and_commutative(
        sa in collection::vec(any::<[u32; 4]>(), 0..8),
        sb in collection::vec(any::<[u32; 4]>(), 0..8),
        sc in collection::vec(any::<[u32; 4]>(), 0..8),
        ga in collection::vec(any::<[u32; 2]>(), 0..6),
        gb in collection::vec(any::<[u32; 2]>(), 0..6),
        gc in collection::vec(any::<[u32; 2]>(), 0..6),
    ) {
        let a = profile_from(&sa, &ga);
        let b = profile_from(&sb, &gb);
        let c = profile_from(&sc, &gc);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let left = merged(&[&merged(&[&a, &b]), &c]);
        let right = merged(&[&a, &merged(&[&b, &c])]);
        prop_assert_eq!(&left, &right);

        // Commutativity: every permutation of three parts agrees.
        let forward = merged(&[&a, &b, &c]);
        let backward = merged(&[&c, &b, &a]);
        let rotated = merged(&[&b, &c, &a]);
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &rotated);

        // The identity merges in from either side.
        let empty = ProfileData::default();
        prop_assert_eq!(&merged(&[&a, &empty]), &a);
        prop_assert_eq!(&merged(&[&empty, &a]), &a);
    }
}
