//! Property-based tests over the workspace's foundational invariants:
//! codec round-trips on arbitrary inputs, parser totality on garbage,
//! crypto soundness, and data-structure invariants.
//!
//! Runs under the in-tree `arpshield-testkit` runner: every case derives
//! deterministically from a fixed base seed (`TESTKIT_SEED` replays a
//! failure, `TESTKIT_CASES` adjusts depth), and failing inputs are
//! greedily shrunk before being reported.

use arpshield_testkit::prelude::*;

use arpshield::crypto::{KeyPair, Signature};
use arpshield::netsim::{CamTable, PortId, SimTime};
use arpshield::packet::{
    ArpOp, ArpPacket, DhcpMessage, EtherType, EthernetFrame, IcmpMessage, IpProtocol, Ipv4Addr,
    Ipv4Cidr, Ipv4Packet, MacAddr, TcpFlags, TcpSegment, UdpDatagram,
};
use std::time::Duration;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from_u32)
}

properties! {
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), ethertype in any::<u16>(),
                          vid in any::<u16>(),
                          payload in collection::vec(any::<u8>(), 0..1500)) {
        // Tag TPIDs (0x8100/0x88a8) are unwrapped by the parser, not
        // carried as a payload protocol; steer them to plain values.
        let ethertype = if EtherType::from_u16(ethertype).is_vlan_tag() {
            EtherType::ARP
        } else {
            EtherType::from_u16(ethertype)
        };
        let mut frame = EthernetFrame::new(dst, src, ethertype, payload.clone());
        if vid % 2 == 0 {
            frame = frame.with_vlan(vid);
        }
        let parsed = EthernetFrame::parse(&frame.encode()).unwrap();
        prop_assert_eq!(parsed.dst, dst);
        prop_assert_eq!(parsed.src, src);
        prop_assert_eq!(parsed.ethertype, ethertype);
        prop_assert_eq!(parsed.vlan, frame.vlan);
        // Padding may extend short payloads; the prefix must survive.
        prop_assert_eq!(&parsed.payload[..payload.len()], &payload[..]);
        prop_assert!(parsed.payload.len() >= 46 || payload.len() >= 46);
        // The borrowed view agrees with the owned parse on the same bytes.
        let bytes = frame.encode();
        let view = arpshield::packet::EthernetView::parse(&bytes).unwrap();
        prop_assert_eq!(view.to_frame(), parsed);
    }

    #[test]
    fn arp_roundtrip(op in prop_oneof![Just(ArpOp::Request), Just(ArpOp::Reply)],
                     smac in arb_mac(), sip in arb_ip(), tmac in arb_mac(), tip in arb_ip()) {
        let pkt = ArpPacket { op, sender_mac: smac, sender_ip: sip, target_mac: tmac, target_ip: tip };
        prop_assert_eq!(ArpPacket::parse(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn ipv4_roundtrip(src in arb_ip(), dst in arb_ip(), ttl in any::<u8>(), ident in any::<u16>(),
                      proto in any::<u8>(), payload in collection::vec(any::<u8>(), 0..600)) {
        let mut pkt = Ipv4Packet::new(src, dst, IpProtocol::from_u8(proto), payload);
        pkt.ttl = ttl;
        pkt.identification = ident;
        prop_assert_eq!(Ipv4Packet::parse(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn udp_roundtrip(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(), dp in any::<u16>(),
                     payload in collection::vec(any::<u8>(), 0..600)) {
        let dgram = UdpDatagram::new(sp, dp, payload);
        prop_assert_eq!(UdpDatagram::parse(&dgram.encode(src, dst), src, dst).unwrap(), dgram);
    }

    #[test]
    fn tcp_roundtrip(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(), dp in any::<u16>(),
                     seq in any::<u32>(), ack in any::<u32>(), flags in 0u8..0x40, window in any::<u16>(),
                     payload in collection::vec(any::<u8>(), 0..400)) {
        let seg = TcpSegment {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags::from_bits(flags), window, payload,
        };
        prop_assert_eq!(TcpSegment::parse(&seg.encode(src, dst), src, dst).unwrap(), seg);
    }

    #[test]
    fn icmp_roundtrip(ident in any::<u16>(), seq in any::<u16>(),
                      payload in collection::vec(any::<u8>(), 0..400)) {
        let msg = IcmpMessage::echo_request(ident, seq, payload);
        prop_assert_eq!(IcmpMessage::parse(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn dhcp_roundtrip(xid in any::<u32>(), chaddr in arb_mac(), requested in arb_ip(), server in arb_ip()) {
        for msg in [
            DhcpMessage::discover(xid, chaddr),
            DhcpMessage::request(xid, chaddr, requested, server),
            DhcpMessage::release(xid, chaddr, requested, server),
        ] {
            prop_assert_eq!(DhcpMessage::parse(&msg.encode()).unwrap(), msg);
        }
    }

    /// Every parser is total: arbitrary bytes never panic, they parse or
    /// return an error. (Detection schemes feed attacker-controlled bytes
    /// straight in.)
    #[test]
    fn parsers_are_total_on_garbage(bytes in collection::vec(any::<u8>(), 0..200)) {
        let _ = EthernetFrame::parse(&bytes);
        let _ = ArpPacket::parse(&bytes);
        let _ = Ipv4Packet::parse(&bytes);
        let _ = IcmpMessage::parse(&bytes);
        let _ = DhcpMessage::parse(&bytes);
        let _ = UdpDatagram::parse(&bytes, Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST);
        let _ = TcpSegment::parse(&bytes, Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST);
        let _ = Signature::from_bytes(&bytes);
    }

    /// Single-bit corruption of a checksummed packet is always caught.
    #[test]
    fn ipv4_header_bitflips_detected(bit in 0usize..(20 * 8)) {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            vec![1, 2, 3],
        );
        let mut bytes = pkt.encode();
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Either the checksum fires or another structural check does; a
        // silently different-but-accepted header is only possible when the
        // flip hits... nothing: every header bit is covered by the
        // checksum, so any flip must be rejected.
        prop_assert!(Ipv4Packet::parse(&bytes).is_err(), "bit {} undetected", bit);
    }

    #[test]
    fn signatures_bind_message_and_key(seed1 in any::<u64>(), seed2 in any::<u64>(),
                                       msg1 in collection::vec(any::<u8>(), 1..64),
                                       msg2 in collection::vec(any::<u8>(), 1..64)) {
        let kp1 = KeyPair::from_seed(seed1);
        let sig = kp1.sign(&msg1);
        prop_assert!(kp1.public_key().verify(&msg1, &sig).is_ok());
        if msg1 != msg2 {
            prop_assert!(kp1.public_key().verify(&msg2, &sig).is_err());
        }
        if seed1 != seed2 {
            let kp2 = KeyPair::from_seed(seed2);
            prop_assert!(kp2.public_key().verify(&msg1, &sig).is_err());
        }
    }

    /// Signatures survive their wire round-trip: `to_bytes`/`from_bytes`
    /// is lossless and the reparsed signature still verifies.
    #[test]
    fn signature_wire_roundtrip(seed in any::<u64>(), msg in collection::vec(any::<u8>(), 1..64)) {
        let kp = KeyPair::from_seed(seed);
        let sig = kp.sign(&msg);
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        prop_assert_eq!(parsed.to_bytes(), sig.to_bytes());
        prop_assert!(kp.public_key().verify(&msg, &parsed).is_ok());
    }

    /// CAM capacity is an invariant under arbitrary learn/sweep schedules.
    #[test]
    fn cam_never_exceeds_capacity(ops in collection::vec((any::<u32>(), 0u16..8, any::<bool>()), 1..200),
                                  capacity in 1usize..64) {
        let mut cam = CamTable::new(capacity, Duration::from_secs(60));
        let mut t = 0u64;
        for (mac, port, sweep) in ops {
            t += 1;
            if sweep {
                cam.sweep(SimTime::from_secs(t));
            } else {
                cam.learn(SimTime::from_secs(t), MacAddr::from_index(mac % 100), PortId(port));
            }
            prop_assert!(cam.occupancy() <= capacity);
        }
    }

    /// A station moving between ports: the CAM always reports the port of
    /// the *latest* learn, and re-learning an existing MAC never grows
    /// the table (the mechanism a switch relies on when hosts roam — and
    /// the one MAC flooding abuses).
    #[test]
    fn cam_learn_move_tracks_latest_port(mac_idx in any::<u32>(),
                                         moves in collection::vec(0u16..8, 1..50)) {
        let mac = MacAddr::from_index(mac_idx % 1000);
        let mut cam = CamTable::new(16, Duration::from_secs(60));
        for (i, port) in moves.iter().enumerate() {
            cam.learn(SimTime::from_secs(i as u64), mac, PortId(*port));
            prop_assert_eq!(cam.lookup(mac), Some(PortId(*port)));
            prop_assert_eq!(cam.occupancy(), 1);
        }
    }

    /// CIDR membership is consistent with host enumeration.
    #[test]
    fn cidr_hosts_are_members(base in arb_ip(), prefix in 8u8..=30, n in 1u32..64) {
        let net = Ipv4Cidr::new(base, prefix);
        if let Some(host) = net.host(n) {
            prop_assert!(net.contains(host));
            prop_assert_ne!(host, net.network());
            prop_assert_ne!(host, net.broadcast());
        }
    }

    /// MAC text form round-trips for arbitrary addresses.
    #[test]
    fn mac_display_roundtrip(mac in arb_mac()) {
        let text = mac.to_string();
        prop_assert_eq!(text.parse::<MacAddr>().unwrap(), mac);
    }
}

// --- crypto field and ticket properties ---

properties! {
    /// The fast Mersenne multiply agrees with the generic shift-add
    /// multiply on arbitrary field elements.
    #[test]
    fn field_mul_matches_reference(a in any::<u128>(), b in any::<u128>()) {
        use arpshield::crypto::field::{mul, mulmod, P};
        let a = a % P;
        let b = b % P;
        prop_assert_eq!(mul(a, b), mulmod(a, b, P));
    }

    /// Exponentiation laws hold: g^(a+b) = g^a · g^b (mod p).
    #[test]
    fn field_pow_is_homomorphic(a in 0u128..1u128 << 64, b in 0u128..1u128 << 64) {
        use arpshield::crypto::field::{mul, pow};
        let g = 3u128;
        prop_assert_eq!(pow(g, a + b), mul(pow(g, a), pow(g, b)));
    }

    /// An impairment profile with `loss_prob = 0` (and every other knob
    /// inert) must replay the exact frame schedule of a perfect wire for
    /// any seed — the impaired delivery path may not perturb timing,
    /// ordering, or byte counts when it has nothing to do.
    #[test]
    fn inert_impairment_is_byte_identical(seed in any::<u64>(), latency_us in 1u64..50) {
        use arpshield::netsim::{
            Device, DeviceCtx, FlapSchedule, LinkProfile, PortId, SimTime, Simulator,
        };

        /// Bounces a counter frame back and forth a fixed number of hops.
        struct Bouncer {
            serve: bool,
        }
        impl Device for Bouncer {
            fn name(&self) -> &str {
                "bouncer"
            }
            fn port_count(&self) -> usize {
                1
            }
            fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
                if self.serve {
                    ctx.send(PortId(0), vec![0]);
                }
            }
            fn on_frame(&mut self, ctx: &mut DeviceCtx<'_>, _port: PortId, frame: &[u8]) {
                if frame[0] < 40 {
                    ctx.send(PortId(0), vec![frame[0] + 1]);
                }
            }
        }

        let fingerprint = |profile: Option<LinkProfile>| -> Vec<(u64, usize)> {
            let mut sim = Simulator::new(seed);
            let a = sim.add_device(Box::new(Bouncer { serve: true }));
            let b = sim.add_device(Box::new(Bouncer { serve: false }));
            let latency = Duration::from_micros(latency_us);
            match profile {
                Some(p) => sim.connect_impaired(a, PortId(0), b, PortId(0), latency, p).unwrap(),
                None => sim.connect(a, PortId(0), b, PortId(0), latency).unwrap(),
            }
            sim.enable_trace();
            sim.run_until(SimTime::from_secs(1));
            sim.trace()
                .unwrap()
                .frames()
                .iter()
                .map(|f| (f.sent_at.as_nanos(), f.bytes.len()))
                .collect()
        };

        // A profile that is *not* `is_perfect()` (the flap forces the
        // impaired delivery path) but whose draws can never fire: the
        // outage starts long after the run ends.
        let inert = LinkProfile::default().with_loss(0.0).with_dup(0.0).with_flap(FlapSchedule {
            offset: Duration::from_secs(3600),
            down_for: Duration::from_secs(1),
            period: Duration::from_secs(7200),
        });
        prop_assert_eq!(fingerprint(Some(inert)), fingerprint(None));
    }

    /// TARP tickets round-trip and never verify under the wrong key or
    /// after expiry.
    #[test]
    fn tarp_ticket_properties(seed in any::<u64>(), ip in any::<u32>(), mac in any::<[u8; 6]>(),
                              expiry_s in 1u64..1_000_000) {
        use arpshield::crypto::KeyPair;
        use arpshield::netsim::SimTime;
        use arpshield::schemes::Ticket;
        let lta = KeyPair::from_seed(seed);
        let ticket = Ticket::issue(
            &lta,
            Ipv4Addr::from_u32(ip),
            MacAddr::new(mac),
            SimTime::from_secs(expiry_s),
        );
        let parsed = Ticket::from_bytes(&ticket.to_bytes()).unwrap();
        prop_assert_eq!(parsed, ticket);
        prop_assert!(ticket.verify(&lta.public_key(), SimTime::from_secs(expiry_s - 1)));
        prop_assert!(!ticket.verify(&lta.public_key(), SimTime::from_secs(expiry_s)));
        let other = KeyPair::from_seed(seed.wrapping_add(1));
        prop_assert!(!ticket.verify(&other.public_key(), SimTime::ZERO));
    }

    /// The empirical CDF is a valid distribution function for any sample
    /// set: sorted x, monotone y, ending at exactly 1.
    #[test]
    fn series_cdf_is_valid(samples in collection::vec(0.0f64..1e9, 1..200)) {
        use arpshield::analysis::Series;
        let s = Series::cdf("p", "x", samples.clone());
        let pts = s.points();
        prop_assert_eq!(pts.len(), samples.len());
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    /// ARP cache: static entries survive any sequence of dynamic writes.
    #[test]
    fn static_entries_are_immovable(writes in collection::vec((any::<u32>(), any::<u32>()), 0..100)) {
        use arpshield::host::{ArpCache, EntryOrigin};
        use arpshield::netsim::SimTime;
        let protected_ip = Ipv4Addr::new(10, 0, 0, 1);
        let protected_mac = MacAddr::from_index(1);
        let mut cache = ArpCache::new(std::time::Duration::from_secs(60));
        cache.insert_static(SimTime::ZERO, protected_ip, protected_mac);
        for (i, (ip, mac)) in writes.iter().enumerate() {
            cache.insert_dynamic(
                SimTime::from_secs(i as u64),
                Ipv4Addr::from_u32(*ip),
                MacAddr::from_index(*mac),
                EntryOrigin::UnsolicitedReply,
            );
        }
        prop_assert_eq!(
            cache.lookup(SimTime::from_secs(1_000_000), protected_ip),
            Some(protected_mac)
        );
    }
}

/// Fan-out devices (hub repeat, switch flood) forward *shared* frame
/// buffers instead of per-copy clones; these properties pin down that
/// the optimisation is invisible on the wire — every delivered copy and
/// every trace record is byte-equal to the frame the sender emitted,
/// exactly as the old clone-per-copy substrate behaved.
mod frame_sharing {
    use super::*;
    use arpshield::netsim::{Device, DeviceCtx, Hub, Simulator, Switch, SwitchConfig};
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Duration;

    /// Emits one fixed frame at start-up.
    struct Sender {
        bytes: Vec<u8>,
    }

    impl Device for Sender {
        fn name(&self) -> &str {
            "sender"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            ctx.send(PortId(0), self.bytes.clone());
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, _: &[u8]) {}
    }

    /// Records every delivered frame's bytes.
    struct Sink {
        got: Rc<RefCell<Vec<Vec<u8>>>>,
    }

    impl Device for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, frame: &[u8]) {
            self.got.borrow_mut().push(frame.to_vec());
        }
    }

    /// Wires `ports - 1` sinks to a fan-out device, fires one frame into
    /// port 0, and returns what every sink saw.
    fn deliver(
        device: Box<dyn Device>,
        ports: usize,
        bytes: Vec<u8>,
    ) -> (Vec<Rc<RefCell<Vec<Vec<u8>>>>>, Simulator) {
        let mut sim = Simulator::new(1);
        let fanout = sim.add_device(device);
        let src = sim.add_device(Box::new(Sender { bytes }));
        sim.connect(src, PortId(0), fanout, PortId(0), Duration::from_micros(1)).unwrap();
        let mut sinks = Vec::new();
        for p in 1..ports as u16 {
            let got = Rc::new(RefCell::new(Vec::new()));
            let sink = sim.add_device(Box::new(Sink { got: Rc::clone(&got) }));
            sim.connect(sink, PortId(0), fanout, PortId(p), Duration::from_micros(1)).unwrap();
            sinks.push(got);
        }
        sim.enable_trace();
        sim.run_until(SimTime::from_secs(1));
        (sinks, sim)
    }

    properties! {
        #[test]
        fn hub_repeat_is_byte_identical(payload in collection::vec(any::<u8>(), 1..600),
                                        ports in 2usize..9) {
            let (sinks, sim) = deliver(Box::new(Hub::new("hub", ports)), ports, payload.clone());
            for got in &sinks {
                let got = got.borrow();
                prop_assert_eq!(got.as_slice(), std::slice::from_ref(&payload));
            }
            // The trace shares the same buffers and must agree byte-for-byte.
            for traced in sim.trace().unwrap().frames() {
                prop_assert_eq!(&traced.bytes[..], &payload[..]);
            }
        }

        #[test]
        fn switch_flood_is_byte_identical(inner in collection::vec(any::<u8>(), 0..600),
                                          src_idx in 1u32..1000, ports in 2usize..9) {
            let encoded = EthernetFrame::new(
                MacAddr::BROADCAST,
                MacAddr::from_index(src_idx),
                EtherType::Other(0x1234),
                inner,
            )
            .encode();
            let (sw, _) = Switch::new("sw", SwitchConfig { ports, ..Default::default() });
            let (sinks, sim) = deliver(Box::new(sw), ports, encoded.clone());
            for got in &sinks {
                let got = got.borrow();
                prop_assert_eq!(got.as_slice(), std::slice::from_ref(&encoded));
            }
            for traced in sim.trace().unwrap().frames() {
                prop_assert_eq!(&traced.bytes[..], &encoded[..]);
            }
        }
    }
}

/// The trace layer's aggregation invariants: bucketing is monotone and
/// total, merging is associative/commutative (so worker interleaving
/// cannot change a manifest), and CSV escaping round-trips any field.
mod trace_invariants {
    use super::*;
    use arpshield::trace::{bucket_of, bucket_range, csv_escape, Histogram, BUCKETS};

    /// Minimal CSV field unquoter (the inverse of `csv_escape`).
    fn csv_unescape(field: &str) -> String {
        match field.strip_prefix('"').and_then(|f| f.strip_suffix('"')) {
            Some(inner) => inner.replace("\"\"", "\""),
            None => field.to_string(),
        }
    }

    properties! {
        #[test]
        fn histogram_bucketing_is_monotone_and_total(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(bucket_of(lo) <= bucket_of(hi), "bucketing must be monotone");
            prop_assert!(bucket_of(hi) < BUCKETS, "every u64 lands in a bucket");
            let (lo_bound, hi_bound) = bucket_range(bucket_of(a));
            prop_assert!(lo_bound <= a && a <= hi_bound, "value lies in its bucket's range");
        }

        #[test]
        fn histogram_merge_is_associative_and_commutative(
            xs in collection::vec(any::<u64>(), 0..40),
            ys in collection::vec(any::<u64>(), 0..40),
            zs in collection::vec(any::<u64>(), 0..40),
        ) {
            let hist = |vals: &[u64]| {
                let mut h = Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let (x, y, z) = (hist(&xs), hist(&ys), hist(&zs));

            // (x + y) + z == x + (y + z): worker scheduling order is moot.
            let mut left = x.clone();
            left.merge(&y);
            left.merge(&z);
            let mut right_tail = y.clone();
            right_tail.merge(&z);
            let mut right = x.clone();
            right.merge(&right_tail);
            prop_assert_eq!(&left, &right);

            // x + y == y + x.
            let mut xy = x.clone();
            xy.merge(&y);
            let mut yx = y.clone();
            yx.merge(&x);
            prop_assert_eq!(&xy, &yx);

            // Merging equals recording the concatenation directly.
            let mut all = xs.clone();
            all.extend(&ys);
            all.extend(&zs);
            prop_assert_eq!(&left, &hist(&all));
        }

        /// The 65-bin histogram's quantile bounds always bracket the
        /// exact sample quantile (nearest-rank definition), and the
        /// exported p50/p90/p99 estimate is the bracket's upper bound.
        #[test]
        fn histogram_quantiles_bracket_exact(samples in collection::vec(any::<u64>(), 1..400)) {
            let mut h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let (lo, hi) = h.quantile_bounds(q).unwrap();
                prop_assert!(
                    lo <= exact && exact <= hi,
                    "q={} exact={} outside bounds [{}, {}]", q, exact, lo, hi
                );
                prop_assert_eq!(h.quantile_estimate(q), Some(hi));
            }
        }

        #[test]
        fn counter_total_merge_is_order_independent(
            counts in collection::vec((0u8..4, 0u64..1_000_000), 0..30),
        ) {
            // Counter merge is per-name addition; any grouping of the
            // per-run deltas must produce the same totals.
            use std::collections::BTreeMap;
            let names = ["a", "b", "c", "d"];
            let mut forward: BTreeMap<&str, u64> = BTreeMap::new();
            for &(which, n) in &counts {
                *forward.entry(names[which as usize]).or_insert(0) += n;
            }
            let mut backward: BTreeMap<&str, u64> = BTreeMap::new();
            for &(which, n) in counts.iter().rev() {
                *backward.entry(names[which as usize]).or_insert(0) += n;
            }
            prop_assert_eq!(forward, backward);
        }

        #[test]
        fn csv_escape_roundtrips_any_field(field in collection::vec(any::<u8>(), 0..80)) {
            let field: String = field.into_iter().map(|b| b as char).collect();
            let escaped = csv_escape(&field);
            // An escaped field never leaks a bare separator or newline.
            if escaped == field {
                prop_assert!(!field.contains([',', '\n', '\r', '"']));
            } else {
                prop_assert!(escaped.starts_with('"') && escaped.ends_with('"'));
            }
            prop_assert_eq!(csv_unescape(&escaped), field);
        }
    }
}

/// The wheel scheduler and the recycling frame pool are the structures
/// the 100k-host scale-up rests on; these properties pin the contracts
/// the rest of the workspace assumes of them.
mod scheduler_and_pool {
    use arpshield_testkit::prelude::*;

    properties! {
        /// The timing wheel is observationally a *stable* min-heap on
        /// `(timestamp, insertion order)`: any interleaving of pushes
        /// and pops replays exactly the sequence a seq-tagged
        /// `BinaryHeap` reference produces — including timestamp ties
        /// and entries past the ~68.7 s wheel horizon.
        #[test]
        fn timing_wheel_matches_heap_order(
            ops in collection::vec((any::<u64>(), any::<u8>()), 1..200),
        ) {
            use arpshield::netsim::{SimTime, TimingWheel};
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;

            let mut wheel: TimingWheel<usize> = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
            let mut clock = 0u64;
            let mut seq = 0u64;
            for (i, &(raw, kind)) in ops.iter().enumerate() {
                if kind % 4 == 0 {
                    let got = wheel.pop().map(|(at, item)| (at.as_nanos(), item));
                    let want = heap.pop().map(|Reverse((at, _, item))| (at, item));
                    prop_assert_eq!(got, want);
                    if let Some((at, _)) = got {
                        clock = at;
                    }
                } else {
                    // Spread delays across wheel levels: frequent ties,
                    // mid-horizon scatter, and horizon-crossing jumps
                    // that exercise the calendar fallback.
                    let delay = match kind % 4 {
                        1 => raw % 4,
                        2 => raw % 10_000_000_000,
                        _ => raw % 200_000_000_000_000,
                    };
                    let at = clock.saturating_add(delay);
                    wheel.push(SimTime::from_nanos(at), i);
                    heap.push(Reverse((at, seq, i)));
                    seq += 1;
                }
            }
            loop {
                let got = wheel.pop().map(|(at, item)| (at.as_nanos(), item));
                let want = heap.pop().map(|Reverse((at, _, item))| (at, item));
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }

        /// A recycled frame buffer is byte-identical to its new
        /// payload: nothing a previous frame left in the allocation
        /// ever leaks through, and a buffer still shared by a live
        /// clone is never handed to a new frame.
        #[test]
        fn frame_recycling_never_leaks_stale_bytes(
            poison in collection::vec(any::<u8>(), 0..2000),
            payload in collection::vec(any::<u8>(), 0..2000),
        ) {
            use arpshield::netsim::Frame;

            let dirty = Frame::from(poison.clone());
            prop_assert_eq!(dirty.as_slice(), &poison[..]);
            drop(dirty);
            let fresh = Frame::from(payload.clone());
            prop_assert_eq!(fresh.len(), payload.len());
            prop_assert_eq!(fresh.as_slice(), &payload[..]);
            // A live clone pins the buffer: dropping one handle must
            // not recycle it out from under the survivor.
            let keep = fresh.clone();
            drop(fresh);
            let churn = Frame::from(poison);
            prop_assert_eq!(keep.as_slice(), &payload[..]);
            prop_assert!(churn.len() <= 2000);
        }
    }
}

/// Byte-identity of the in-place wire writers against independent
/// reference encoders.
///
/// The legacy `encode()` methods are now thin shims over the mutable
/// view writers, so comparing `encode()` to itself would prove nothing.
/// Each reference encoder below re-implements the original Vec-building
/// serialization (including an independent ones'-complement checksum)
/// from the wire-format spec; any drift the redesign introduced into
/// header layout, padding, or checksums shows up here as a shrunk
/// counterexample.
mod wire_emit_identity {
    use super::*;
    use arpshield::netsim::{eth_frame, Frame};
    use arpshield::packet::{DhcpMessageType, DhcpOp, DhcpOption};

    /// Independent RFC 1071 checksum over a contiguous byte string (odd
    /// trailing byte zero-padded).
    fn ref_checksum(bytes: &[u8]) -> u16 {
        let mut sum: u32 = 0;
        for chunk in bytes.chunks(2) {
            let word = if chunk.len() == 2 {
                u16::from_be_bytes([chunk[0], chunk[1]])
            } else {
                u16::from_be_bytes([chunk[0], 0])
            };
            sum += u32::from(word);
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: u16) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        out.extend_from_slice(&src.octets());
        out.extend_from_slice(&dst.octets());
        out.push(0);
        out.push(protocol);
        out.extend_from_slice(&len.to_be_bytes());
        out
    }

    fn ref_ethernet(f: &EthernetFrame) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(f.dst.as_bytes());
        out.extend_from_slice(f.src.as_bytes());
        if let Some(vid) = f.vlan {
            out.extend_from_slice(&0x8100u16.to_be_bytes());
            out.extend_from_slice(&(vid & 0x0FFF).to_be_bytes());
        }
        out.extend_from_slice(&f.ethertype.to_u16().to_be_bytes());
        out.extend_from_slice(&f.payload);
        for _ in f.payload.len()..46 {
            out.push(0);
        }
        out
    }

    fn ref_arp(p: &ArpPacket) -> Vec<u8> {
        let mut out = vec![0, 1, 8, 0, 6, 4]; // htype 1, ptype 0x0800, hlen, plen
        out.extend_from_slice(&p.op.to_u16().to_be_bytes());
        out.extend_from_slice(p.sender_mac.as_bytes());
        out.extend_from_slice(&p.sender_ip.octets());
        out.extend_from_slice(p.target_mac.as_bytes());
        out.extend_from_slice(&p.target_ip.octets());
        out
    }

    fn ref_ipv4(p: &Ipv4Packet) -> Vec<u8> {
        let total = 20 + p.payload.len();
        let mut h = vec![0u8; 20];
        h[0] = 0x45;
        h[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        h[4..6].copy_from_slice(&p.identification.to_be_bytes());
        h[8] = p.ttl;
        h[9] = p.protocol.to_u8();
        h[12..16].copy_from_slice(&p.src.octets());
        h[16..20].copy_from_slice(&p.dst.octets());
        let ck = ref_checksum(&h);
        h[10..12].copy_from_slice(&ck.to_be_bytes());
        h.extend_from_slice(&p.payload);
        h
    }

    fn ref_udp(d: &UdpDatagram, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let len = (8 + d.payload.len()) as u16;
        let mut out = Vec::new();
        out.extend_from_slice(&d.src_port.to_be_bytes());
        out.extend_from_slice(&d.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&d.payload);
        let mut covered = pseudo_header(src, dst, 17, len);
        covered.extend_from_slice(&out);
        let mut ck = ref_checksum(&covered);
        if ck == 0 {
            ck = 0xffff;
        }
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out
    }

    fn ref_icmp(m: &IcmpMessage) -> Vec<u8> {
        let mut out = vec![m.icmp_type.to_u8(), 0, 0, 0];
        out.extend_from_slice(&m.identifier.to_be_bytes());
        out.extend_from_slice(&m.sequence.to_be_bytes());
        out.extend_from_slice(&m.payload);
        let ck = ref_checksum(&out);
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }

    fn ref_tcp(s: &TcpSegment, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let total = (20 + s.payload.len()) as u16;
        let mut out = vec![0u8; 20];
        out[0..2].copy_from_slice(&s.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&s.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&s.seq.to_be_bytes());
        out[8..12].copy_from_slice(&s.ack.to_be_bytes());
        out[12] = 5 << 4;
        out[13] = s.flags.bits();
        out[14..16].copy_from_slice(&s.window.to_be_bytes());
        out.extend_from_slice(&s.payload);
        let mut covered = pseudo_header(src, dst, 6, total);
        covered.extend_from_slice(&out);
        let ck = ref_checksum(&covered);
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        out
    }

    fn ref_dhcp(m: &DhcpMessage) -> Vec<u8> {
        let mut out = vec![0u8; 236];
        out[0] = m.op.to_u8();
        out[1] = 1; // htype: ethernet
        out[2] = 6; // hlen
        out[4..8].copy_from_slice(&m.xid.to_be_bytes());
        out[10] = 0x80; // broadcast flag
        out[12..16].copy_from_slice(&m.ciaddr.octets());
        out[16..20].copy_from_slice(&m.yiaddr.octets());
        out[20..24].copy_from_slice(&m.siaddr.octets());
        out[28..34].copy_from_slice(m.chaddr.as_bytes());
        out.extend_from_slice(&[99, 130, 83, 99]);
        for opt in &m.options {
            match opt {
                DhcpOption::SubnetMask(a) => push_addr_opt(&mut out, 1, *a),
                DhcpOption::Router(a) => push_addr_opt(&mut out, 3, *a),
                DhcpOption::DnsServer(a) => push_addr_opt(&mut out, 6, *a),
                DhcpOption::RequestedIp(a) => push_addr_opt(&mut out, 50, *a),
                DhcpOption::LeaseTime(t) => {
                    out.extend_from_slice(&[51, 4]);
                    out.extend_from_slice(&t.to_be_bytes());
                }
                DhcpOption::MessageType(t) => out.extend_from_slice(&[53, 1, t.to_u8()]),
                DhcpOption::ServerId(a) => push_addr_opt(&mut out, 54, *a),
                DhcpOption::Other(code, data) => {
                    out.push(*code);
                    out.push(data.len() as u8);
                    out.extend_from_slice(data);
                }
            }
        }
        out.push(255);
        out
    }

    fn push_addr_opt(out: &mut Vec<u8>, code: u8, addr: Ipv4Addr) {
        out.push(code);
        out.push(4);
        out.extend_from_slice(&addr.octets());
    }

    fn arb_dhcp_option() -> impl Strategy<Value = DhcpOption> {
        prop_oneof![
            arb_ip().prop_map(DhcpOption::SubnetMask),
            arb_ip().prop_map(DhcpOption::Router),
            arb_ip().prop_map(DhcpOption::DnsServer),
            arb_ip().prop_map(DhcpOption::RequestedIp),
            any::<u32>().prop_map(DhcpOption::LeaseTime),
            prop_oneof![
                Just(DhcpMessageType::Discover),
                Just(DhcpMessageType::Offer),
                Just(DhcpMessageType::Request),
                Just(DhcpMessageType::Ack),
                Just(DhcpMessageType::Nak),
                Just(DhcpMessageType::Release),
            ]
            .prop_map(DhcpOption::MessageType),
            arb_ip().prop_map(DhcpOption::ServerId),
            (1u8..=254, collection::vec(any::<u8>(), 0..40))
                .prop_map(|(code, data)| DhcpOption::Other(code, data)),
        ]
    }

    properties! {
        #[test]
        fn ethernet_emit_matches_reference(dst in arb_mac(), src in arb_mac(),
                                           ethertype in any::<u16>(), vid in any::<u16>(),
                                           payload in collection::vec(any::<u8>(), 0..1500)) {
            let ethertype = if EtherType::from_u16(ethertype).is_vlan_tag() {
                EtherType::ARP
            } else {
                EtherType::from_u16(ethertype)
            };
            let mut frame = EthernetFrame::new(dst, src, ethertype, payload);
            if vid % 2 == 0 {
                frame = frame.with_vlan(vid);
            }
            prop_assert_eq!(frame.encode(), ref_ethernet(&frame));
        }

        #[test]
        fn arp_emit_matches_reference(op in prop_oneof![Just(ArpOp::Request), Just(ArpOp::Reply)],
                                      smac in arb_mac(), sip in arb_ip(),
                                      tmac in arb_mac(), tip in arb_ip()) {
            let pkt = ArpPacket {
                op, sender_mac: smac, sender_ip: sip, target_mac: tmac, target_ip: tip,
            };
            prop_assert_eq!(pkt.encode(), ref_arp(&pkt));
        }

        #[test]
        fn ipv4_emit_matches_reference(src in arb_ip(), dst in arb_ip(), ttl in any::<u8>(),
                                       ident in any::<u16>(), proto in any::<u8>(),
                                       payload in collection::vec(any::<u8>(), 0..600)) {
            let mut pkt = Ipv4Packet::new(src, dst, IpProtocol::from_u8(proto), payload);
            pkt.ttl = ttl;
            pkt.identification = ident;
            prop_assert_eq!(pkt.encode(), ref_ipv4(&pkt));
        }

        #[test]
        fn udp_emit_matches_reference(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(),
                                      dp in any::<u16>(),
                                      payload in collection::vec(any::<u8>(), 0..600)) {
            let dgram = UdpDatagram::new(sp, dp, payload);
            prop_assert_eq!(dgram.encode(src, dst), ref_udp(&dgram, src, dst));
        }

        #[test]
        fn icmp_emit_matches_reference(ident in any::<u16>(), seq in any::<u16>(),
                                       payload in collection::vec(any::<u8>(), 0..200)) {
            let req = IcmpMessage::echo_request(ident, seq, payload);
            prop_assert_eq!(req.encode(), ref_icmp(&req));
            let rep = IcmpMessage::reply_to(&req);
            prop_assert_eq!(rep.encode(), ref_icmp(&rep));
        }

        #[test]
        fn tcp_emit_matches_reference(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(),
                                      dp in any::<u16>(), seq in any::<u32>(), ack in any::<u32>(),
                                      flags in any::<u8>(), window in any::<u16>(),
                                      payload in collection::vec(any::<u8>(), 0..200)) {
            let seg = TcpSegment {
                src_port: sp, dst_port: dp, seq, ack,
                flags: TcpFlags::from_bits(flags), window, payload,
            };
            prop_assert_eq!(seg.encode(src, dst), ref_tcp(&seg, src, dst));
        }

        #[test]
        fn dhcp_emit_matches_reference(op in prop_oneof![Just(DhcpOp::BootRequest),
                                                         Just(DhcpOp::BootReply)],
                                       xid in any::<u32>(), ci in arb_ip(), yi in arb_ip(),
                                       si in arb_ip(), chaddr in arb_mac(),
                                       options in collection::vec(arb_dhcp_option(), 0..8)) {
            let msg = DhcpMessage {
                op, xid, ciaddr: ci, yiaddr: yi, siaddr: si, chaddr, options,
            };
            prop_assert_eq!(msg.encode(), ref_dhcp(&msg));
        }

        /// The pooled TX constructor hands out recycled buffers; whatever a
        /// previous tenant wrote must never show through, and the closure's
        /// bytes must come back exactly.
        #[test]
        fn frame_build_never_exposes_stale_bytes(poison in collection::vec(1u8..=255, 1..1500),
                                                 len in 0usize..1500, fill in any::<u8>(),
                                                 written in 0usize..1500) {
            let written = written.min(len);
            let tenant = Frame::from(poison);
            drop(tenant); // recycled: the next build reuses this buffer
            let frame = Frame::build(len, |buf| {
                buf[..written].fill(fill);
                buf.len()
            });
            prop_assert_eq!(frame.len(), len);
            prop_assert!(frame[..written].iter().all(|&b| b == fill));
            // Everything the closure did not touch reads back as zero —
            // the pre-zeroing that doubles as Ethernet padding.
            prop_assert!(frame[written..].iter().all(|&b| b == 0));
        }

        /// The netsim TX one-liner produces exactly the bytes of the owned
        /// builder it replaced.
        #[test]
        fn eth_frame_matches_owned_encoder(dst in arb_mac(), src in arb_mac(),
                                           ethertype in any::<u16>(),
                                           payload in collection::vec(any::<u8>(), 0..600)) {
            let ethertype = if EtherType::from_u16(ethertype).is_vlan_tag() {
                EtherType::ARP
            } else {
                EtherType::from_u16(ethertype)
            };
            let owned =
                EthernetFrame::new(dst, src, ethertype, payload.clone()).encode();
            let pooled = eth_frame(dst, src, ethertype, &payload[..]);
            prop_assert_eq!(pooled.as_slice(), &owned[..]);
        }

        /// Streaming a byte string through `Checksum::add_bytes` in
        /// arbitrary chunks — odd-length ones included — folds to the
        /// same sum as one whole-buffer call. The incremental checksum
        /// must carry a dangling odd byte *across* calls, not pad each
        /// chunk independently.
        #[test]
        fn checksum_chunking_is_split_invariant(bytes in collection::vec(any::<u8>(), 0..300),
                                                cuts in collection::vec(any::<u16>(), 0..12)) {
            use arpshield::packet::Checksum;

            let mut whole = Checksum::new();
            whole.add_bytes(&bytes);

            // Random split points, sorted and clamped into range; runs
            // of equal cuts feed empty slices through the stream too.
            let mut splits: Vec<usize> =
                cuts.iter().map(|&c| c as usize % (bytes.len() + 1)).collect();
            splits.sort_unstable();
            let mut chunked = Checksum::new();
            let mut start = 0;
            for cut in splits {
                chunked.add_bytes(&bytes[start..cut]);
                start = cut;
            }
            chunked.add_bytes(&bytes[start..]);
            prop_assert_eq!(chunked.finish(), whole.finish());
        }
    }
}

/// VLAN flood-domain isolation on the switch: a broadcast classified
/// into one VLAN is delivered to every other member port of that VLAN
/// and to *no* port outside it, for arbitrary access-port VID layouts.
mod vlan_isolation {
    use super::*;
    use arpshield::netsim::{
        Device, DeviceCtx, PortVlan, Simulator, Switch, SwitchConfig, VlanSet,
    };
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Duration;

    /// Sends one broadcast at start-up, records everything delivered.
    struct Station {
        emit: Option<Vec<u8>>,
        got: Rc<RefCell<Vec<Vec<u8>>>>,
    }

    impl Device for Station {
        fn name(&self) -> &str {
            "station"
        }
        fn port_count(&self) -> usize {
            1
        }
        fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
            if let Some(bytes) = self.emit.take() {
                ctx.send(PortId(0), bytes);
            }
        }
        fn on_frame(&mut self, _: &mut DeviceCtx<'_>, _: PortId, frame: &[u8]) {
            self.got.borrow_mut().push(frame.to_vec());
        }
    }

    properties! {
        /// Ports are assigned to VID 10 or VID 20 by an arbitrary mask
        /// (one trunk carrying only VID 10 rides along); a broadcast
        /// from a VID-10 access port reaches exactly the other VID-10
        /// members — never an access port on VID 20.
        #[test]
        fn broadcasts_never_cross_vlans(mask in any::<u8>(), src_idx in any::<u8>(),
                                        payload in collection::vec(any::<u8>(), 0..200)) {
            let ports = 8usize;
            let vids: Vec<u16> =
                (0..ports).map(|p| if mask & (1 << p) != 0 { 10 } else { 20 }).collect();
            // The sender sits on some VID-10 access port; force one to exist.
            let mut vids = vids;
            vids[src_idx as usize % ports] = 10;
            let src_port = src_idx as usize % ports;

            let mut vlans: Vec<PortVlan> =
                vids.iter().map(|&pvid| PortVlan::Access { pvid }).collect();
            vlans.push(PortVlan::Trunk { allowed: VlanSet::Only(vec![10]) });
            let (sw, _) = Switch::new(
                "sw",
                SwitchConfig { ports: ports + 1, vlans: Some(vlans), ..Default::default() },
            );

            let mut sim = Simulator::new(1);
            let sw = sim.add_device(Box::new(sw));
            let frame = EthernetFrame::new(
                MacAddr::BROADCAST,
                MacAddr::from_index(99),
                EtherType::Other(0x1234),
                payload,
            )
            .encode();
            let mut sinks = Vec::new();
            for p in 0..=ports {
                let got = Rc::new(RefCell::new(Vec::new()));
                let emit = (p == src_port).then(|| frame.clone());
                let station = sim.add_device(Box::new(Station { emit, got: Rc::clone(&got) }));
                sim.connect(station, PortId(0), sw, PortId(p as u16), Duration::from_micros(1))
                    .unwrap();
                sinks.push(got);
            }
            sim.run_until(SimTime::from_secs(1));

            for (p, got) in sinks.iter().enumerate() {
                let got = got.borrow();
                if p == src_port {
                    prop_assert!(got.is_empty(), "sender port {} heard its own flood", p);
                } else if p == ports {
                    // The trunk carries VID 10, so the copy arrives tagged.
                    prop_assert_eq!(got.len(), 1);
                    let parsed = EthernetFrame::parse(&got[0]).unwrap();
                    prop_assert_eq!(parsed.vlan, Some(10));
                } else if vids[p] == 10 {
                    prop_assert_eq!(got.len(), 1);
                    // Access egress is untagged: the sender's bytes verbatim.
                    prop_assert_eq!(&got[0][..], &frame[..]);
                } else {
                    prop_assert!(got.is_empty(), "VID-20 access port {} leaked a frame", p);
                }
            }
        }
    }
}
