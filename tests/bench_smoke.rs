//! Smoke-tests the bench pipeline end to end: a 1-iteration run of the
//! in-tree harness must produce a `results/bench/*.json` artifact that
//! parses and carries the statistics the perf trajectory consumes.

use arpshield::packet::{ArpPacket, EtherType, EthernetFrame, Ipv4Addr, MacAddr};
use arpshield_testkit::{json, BenchConfig, Criterion, Throughput};

#[test]
fn one_iteration_bench_run_emits_parseable_json() {
    let frame = EthernetFrame::new(
        MacAddr::BROADCAST,
        MacAddr::from_index(1),
        EtherType::ARP,
        ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        )
        .encode(),
    )
    .encode();

    // Exactly what `TESTKIT_BENCH_SMOKE=1 cargo bench` does per bench:
    // 1 iteration, 1 sample, no warmup.
    let mut criterion = Criterion::with_config(BenchConfig::smoke());
    {
        let mut group = criterion.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_function("parse_eth_arp", |b| {
            b.iter(|| {
                let eth = EthernetFrame::parse(&frame).unwrap();
                ArpPacket::parse(&eth.payload).unwrap()
            })
        });
        group.finish();
    }

    let path = criterion.write_summary("smoke").expect("summary must be writable");
    assert!(path.ends_with("results/bench/smoke.json"), "unexpected path {path:?}");

    let text = std::fs::read_to_string(&path).expect("artifact must exist");
    let doc = json::parse(&text).expect("artifact must be valid JSON");
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("arpshield-bench-v1"));

    let results = doc.get("results").and_then(|r| r.as_arr()).expect("results array");
    assert_eq!(results.len(), 1);
    let record = &results[0];
    assert_eq!(record.get("group").and_then(|v| v.as_str()), Some("smoke"));
    assert_eq!(record.get("id").and_then(|v| v.as_str()), Some("parse_eth_arp"));
    assert_eq!(record.get("iters_per_sample").and_then(|v| v.as_num()), Some(1.0));
    for key in ["mean_ns", "median_ns", "min_ns", "max_ns", "stddev_ns"] {
        let value = record.get(key).and_then(|v| v.as_num());
        assert!(value.is_some_and(|v| v >= 0.0), "{key} missing or negative: {value:?}");
    }
    let throughput = record.get("throughput").expect("throughput annotation");
    assert_eq!(throughput.get("kind").and_then(|v| v.as_str()), Some("bytes"));
    assert!(throughput.get("per_sec").and_then(|v| v.as_num()).unwrap() > 0.0);
}
