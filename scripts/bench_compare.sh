#!/usr/bin/env bash
# Advisory bench regression check: compares the median of every bench in
# results/bench/*.json against the committed baseline under
# results/bench/baseline/, flagging entries slower than THRESHOLD×.
#
#   scripts/bench_compare.sh            # compare, warn, always exit 0
#   THRESHOLD=2.0 scripts/bench_compare.sh
#
# Besides the human-readable report, every run rewrites
# results/bench/compare.json (schema arpshield-bench-compare/1) with one
# entry per compared bench, so dashboards and follow-up tooling can
# consume the comparison without re-parsing the stdout.
#
# This is deliberately NON-FATAL: CI runs the benches in one-iteration
# smoke mode (TESTKIT_BENCH_SMOKE=1), so its numbers are indicative only
# and noisy by design. Regenerate real baselines with a measured run:
#
#   cargo bench --workspace --offline && cp results/bench/*.json results/bench/baseline/
set -uo pipefail

cd "$(dirname "$0")/.."

current_dir="results/bench"
baseline_dir="results/bench/baseline"
threshold="${THRESHOLD:-1.5}"

if [ ! -d "$baseline_dir" ]; then
    echo "bench_compare: no baseline directory at $baseline_dir — skipping"
    exit 0
fi

python3 - "$current_dir" "$baseline_dir" "$threshold" <<'PY'
import json
import pathlib
import sys

current_dir, baseline_dir, threshold = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2]), float(sys.argv[3])


def medians(path):
    """-> {(group, id): median} for arpshield-bench-v1; allocation files
    (arpshield-allocs-v1) compare allocs_per_frame instead."""
    data = json.loads(path.read_text())
    out = {}
    for entry in data.get("results", []):
        key = (entry.get("group", ""), entry["id"])
        if data.get("schema") == "arpshield-allocs-v1":
            out[key] = (entry["allocs_per_frame"], "allocs/frame")
        elif "median_ns" in entry:
            out[key] = (entry["median_ns"], "ns")
    return out


regressions = improvements = compared = 0
entries = []
for baseline_file in sorted(baseline_dir.glob("*.json")):
    current_file = current_dir / baseline_file.name
    if not current_file.exists():
        print(f"bench_compare: {baseline_file.name}: no fresh run to compare (skipped)")
        continue
    base = medians(baseline_file)
    cur = medians(current_file)
    for key, (base_value, unit) in sorted(base.items()):
        if key not in cur or base_value <= 0:
            continue
        compared += 1
        cur_value = cur[key][0]
        ratio = cur_value / base_value
        name = "/".join(k for k in key if k)
        if ratio >= threshold:
            regressions += 1
            verdict = "slower"
            print(
                f"bench_compare: SLOWER {name}: {cur_value:.1f} {unit} vs "
                f"baseline {base_value:.1f} {unit} ({ratio:.2f}x >= {threshold}x)"
            )
        elif ratio <= 1 / threshold:
            improvements += 1
            verdict = "faster"
            print(
                f"bench_compare: faster {name}: {cur_value:.1f} {unit} vs "
                f"baseline {base_value:.1f} {unit} ({ratio:.2f}x)"
            )
        else:
            verdict = "ok"
        entries.append(
            {
                "name": name,
                "file": baseline_file.name,
                "unit": unit,
                "baseline": base_value,
                "current": cur_value,
                "ratio": round(ratio, 4),
                "verdict": verdict,
            }
        )

print(
    f"bench_compare: {compared} entries compared, {regressions} above the "
    f"{threshold}x advisory threshold, {improvements} markedly faster"
)
if regressions:
    print("bench_compare: advisory only — smoke-mode CI numbers are noisy; rerun `cargo bench` measured before acting")

report = {
    "schema": "arpshield-bench-compare/1",
    "threshold": threshold,
    "compared": compared,
    "regressions": regressions,
    "improvements": improvements,
    "entries": entries,
}
out_path = current_dir / "compare.json"
out_path.write_text(json.dumps(report, indent=2) + "\n")
print(f"bench_compare: wrote {out_path}")
PY

# Advisory: never fail the build on a perf delta.
exit 0
