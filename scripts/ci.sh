#!/usr/bin/env bash
# The offline CI gate. Everything must pass with no registry access and
# with warnings promoted to errors.
#
#   scripts/ci.sh
#
# Steps: rustfmt check, release build, full test suite, and a
# one-iteration smoke run of every bench (which also exercises the
# results/bench/*.json emission path).
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> TESTKIT_BENCH_SMOKE=1 cargo bench --workspace --offline"
TESTKIT_BENCH_SMOKE=1 cargo bench --workspace --offline

echo "==> scripts/bench_compare.sh (advisory)"
scripts/bench_compare.sh

echo "==> ci.sh: all gates passed"
