#!/usr/bin/env bash
# The offline CI gate. Everything must pass with no registry access and
# with warnings promoted to errors.
#
#   scripts/ci.sh
#
# Steps: rustfmt check, release build, full test suite, a smoke run of
# the t5r loss-resilience sweep, a `--trace` smoke (manifest emission +
# validation), and a one-iteration smoke run of every bench (which also
# exercises the results/bench/*.json emission path).
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> reproduce t5r smoke (loss-resilience sweep)"
t5r_out="$(mktemp -d)"
./target/release/reproduce t5r --out "$t5r_out" >/dev/null
test -s "$t5r_out/t5r.csv"
rm -rf "$t5r_out"

echo "==> reproduce --trace smoke (run manifest emission + validation)"
trace_out="$(mktemp -d)"
./target/release/reproduce --trace t2 --out "$trace_out" >/dev/null
test -s "$trace_out/t2.csv"
test -s "$trace_out/trace/t2.json"
test -s "$trace_out/trace/t2.csv"
./target/release/reproduce validate-trace "$trace_out/trace/t2.json"
rm -rf "$trace_out"

echo "==> TESTKIT_BENCH_SMOKE=1 cargo bench --workspace --offline"
TESTKIT_BENCH_SMOKE=1 cargo bench --workspace --offline

echo "==> scripts/bench_compare.sh (advisory)"
scripts/bench_compare.sh

echo "==> ci.sh: all gates passed"
