#!/usr/bin/env bash
# The offline CI gate. Everything must pass with no registry access and
# with warnings promoted to errors.
#
#   scripts/ci.sh
#
# Steps: rustfmt check, release build, full test suite, a smoke run of
# the t5r loss-resilience sweep, a `--trace` smoke (manifest emission +
# validation), a `--capture` smoke (pcapng + index emission, forensic
# `inspect` timeline with verdict provenance), an `ingest` smoke
# (capture re-ingest through the standalone detector, checking live vs
# re-ingested verdict-counter parity), and a one-iteration smoke run of
# every bench (which also exercises the results/bench/*.json emission
# path).
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> reproduce t5r smoke (loss-resilience sweep)"
t5r_out="$(mktemp -d)"
./target/release/reproduce t5r --out "$t5r_out" >/dev/null
test -s "$t5r_out/t5r.csv"
rm -rf "$t5r_out"

echo "==> reproduce --trace smoke (run manifest emission + validation)"
trace_out="$(mktemp -d)"
./target/release/reproduce --trace t2 --out "$trace_out" >/dev/null
test -s "$trace_out/t2.csv"
test -s "$trace_out/trace/t2.json"
test -s "$trace_out/trace/t2.csv"
test -s "$trace_out/trace/t2.hist.csv"
./target/release/reproduce validate-trace "$trace_out/trace/t2.json"
# The directory form must find and validate the same manifest.
./target/release/reproduce validate-trace "$trace_out/trace"
rm -rf "$trace_out"

echo "==> reproduce --capture smoke (pcapng + index + inspect timeline)"
capture_out="$(mktemp -d)"
ARPSHIELD_RECORD_FRAMES=256 ./target/release/reproduce --capture t2 t3 \
    --out "$capture_out" >/dev/null
for id in t2 t3; do
    test -s "$capture_out/capture/$id.pcapng"
    test -s "$capture_out/capture/$id.index.json"
done
./target/release/reproduce inspect "$capture_out/capture/t2.pcapng" >/dev/null
# t3 runs defended cells: the timeline must surface verdicts with their
# pinned provenance frames.
./target/release/reproduce inspect "$capture_out/capture/t3.pcapng" \
    --verdict binding_changed >"$capture_out/t3.timeline"
grep -q "scheme.verdict" "$capture_out/t3.timeline"
rm -rf "$capture_out"

echo "==> reproduce t6s --defend smoke (scale sweep, thread-count byte identity)"
t6s_out="$(mktemp -d)"
# Small host counts so the smoke stays fast; the published sweep runs
# the full 1k-100k grid. `--defend` additionally runs the VLAN fabric
# with in-fabric DAI (id t6sd). All CSVs — undefended and defended —
# must be byte-identical whether the sweep points fan out over one
# worker or four.
ARPSHIELD_T6S_HOSTS=300,900 ARPSHIELD_THREADS=1 \
    ./target/release/reproduce t6s --defend --out "$t6s_out/one" >/dev/null 2>&1
ARPSHIELD_T6S_HOSTS=300,900 ARPSHIELD_THREADS=4 \
    ./target/release/reproduce t6s --defend --out "$t6s_out/four" >/dev/null 2>&1
test -s "$t6s_out/one/t6s_0.csv"
test -s "$t6s_out/one/t6s_1.csv"
# Defended series: open/DAI throughput plus denial and work counters.
for i in 0 1 2 3; do
    test -s "$t6s_out/one/t6sd_$i.csv"
done
# DAI must actually deny the smoke's spoofed frames at every size.
awk -F',' 'NR > 1 && $2 + 0 <= 0 { exit 1 }' "$t6s_out/one/t6sd_2.csv"
diff -r "$t6s_out/one" "$t6s_out/four"
rm -rf "$t6s_out"

echo "==> reproduce ingest smoke (capture re-ingest + verdict parity)"
ingest_out="$(mktemp -d)"
# Live t3 with a ring large enough that no frame is evicted: re-ingest
# parity needs the monitor's complete vantage on disk.
ARPSHIELD_RECORD_FRAMES=200000 ./target/release/reproduce t3 --trace --capture \
    --out "$ingest_out" >/dev/null
./target/release/reproduce ingest "$ingest_out/capture/t3.pcapng" \
    --scheme passive --vantage passive-monitor --out "$ingest_out" >/dev/null
test -s "$ingest_out/trace/ingest.json"
test -s "$ingest_out/trace/ingest.csv"
./target/release/reproduce validate-trace "$ingest_out/trace/ingest.json"
# The standalone detector must reproduce the live passive runs' verdict
# counters exactly from the recorded vantage.
live_verdicts="$(awk -F',' '/scheme=passive/ && /scheme\.verdict\./ {sum+=$NF} END {print sum+0}' \
    "$ingest_out/trace/t3.csv")"
ingest_verdicts="$(awk -F',' '/detector=passive/ && /scheme\.verdict\./ {sum+=$NF} END {print sum+0}' \
    "$ingest_out/trace/ingest.csv")"
test "$live_verdicts" -gt 0
test "$live_verdicts" = "$ingest_verdicts"
rm -rf "$ingest_out"

echo "==> TESTKIT_BENCH_SMOKE=1 cargo bench --workspace --offline"
TESTKIT_BENCH_SMOKE=1 cargo bench --workspace --offline

echo "==> alloc-floor gate (frame_delivery allocs/frame vs committed baseline)"
# Allocation counts are deterministic (seeded sim, warmed frame pool), so
# unlike the timing comparison above this gate is FATAL: the bench smoke
# just rewrote results/bench/frame_delivery_allocs.json from a live run,
# and any workload allocating more per delivered frame than the committed
# baseline — or the hub broadcast path exceeding its 0.02 allocs/frame
# ceiling — fails CI.
python3 - results/bench/frame_delivery_allocs.json \
    results/bench/baseline/frame_delivery_allocs.json <<'PY'
import json
import sys

live_path, base_path = sys.argv[1], sys.argv[2]
live = {e["id"]: e for e in json.load(open(live_path))["results"]}
base = {e["id"]: e for e in json.load(open(base_path))["results"]}

HUB_CEILING = 0.02  # absolute allocs/frame bound on the zero-copy TX path

failed = False
for wid, entry in sorted(base.items()):
    if wid not in live:
        print(f"alloc gate: FAIL {wid}: missing from live report")
        failed = True
        continue
    got, want = live[wid]["allocs_per_frame"], entry["allocs_per_frame"]
    verdict = "ok" if got <= want else "FAIL (regressed)"
    failed |= got > want
    print(f"alloc gate: {verdict} {wid}: {got:.4f} allocs/frame (baseline {want:.4f})")

hub = live.get("hub16/broadcast")
if hub is None or hub["allocs_per_frame"] > HUB_CEILING:
    print(f"alloc gate: FAIL hub16/broadcast exceeds {HUB_CEILING} allocs/frame ceiling")
    failed = True

sys.exit(1 if failed else 0)
PY

echo "==> scripts/bench_compare.sh (advisory)"
scripts/bench_compare.sh

echo "==> ci.sh: all gates passed"
