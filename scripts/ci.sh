#!/usr/bin/env bash
# The offline CI gate. Everything must pass with no registry access and
# with warnings promoted to errors.
#
#   scripts/ci.sh
#
# Steps: rustfmt check, release build, full test suite, a smoke run of
# the t5r loss-resilience sweep, a `--trace` smoke (manifest emission +
# validation), a `--profile` smoke (span profile emission + report
# rendering), a `--capture` smoke (pcapng + index emission, forensic
# `inspect` timeline with verdict provenance), an `ingest` smoke
# (capture re-ingest through the standalone detector, checking live vs
# re-ingested verdict-counter parity), and a one-iteration smoke run of
# every bench (which also exercises the results/bench/*.json emission
# path).
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --workspace --offline"
cargo test -q --workspace --offline

echo "==> reproduce t5r smoke (loss-resilience sweep)"
t5r_out="$(mktemp -d)"
./target/release/reproduce t5r --out "$t5r_out" >/dev/null
test -s "$t5r_out/t5r.csv"
rm -rf "$t5r_out"

echo "==> reproduce --trace smoke (run manifest emission + validation)"
trace_out="$(mktemp -d)"
./target/release/reproduce --trace t2 --out "$trace_out" >/dev/null
test -s "$trace_out/t2.csv"
test -s "$trace_out/trace/t2.json"
test -s "$trace_out/trace/t2.csv"
test -s "$trace_out/trace/t2.hist.csv"
./target/release/reproduce validate-trace "$trace_out/trace/t2.json"
# The directory form must find and validate the same manifest.
./target/release/reproduce validate-trace "$trace_out/trace"
rm -rf "$trace_out"

echo "==> reproduce --profile smoke (span profile emission + report rendering)"
profile_out="$(mktemp -d)"
./target/release/reproduce --profile t3 --out "$profile_out" >/dev/null
test -s "$profile_out/t3.csv"
test -s "$profile_out/profile/t3.json"
test -s "$profile_out/profile/t3.csv"
grep -q '"schema": "arpshield-profile/1"' "$profile_out/profile/t3.json"
./target/release/reproduce profile-report "$profile_out/profile/t3.json" \
    >"$profile_out/report.txt"
grep -q "arpshield-profile/1" "$profile_out/report.txt"
# At least one span row with real samples: the simulator's dispatch
# span fires for every delivered frame in every t3 cell.
grep -q "sim.deliver" "$profile_out/report.txt"
# A non-profile file must be rejected with a nonzero exit.
if ./target/release/reproduce profile-report "$profile_out/t3.csv" >/dev/null 2>&1; then
    echo "profile-report accepted a non-profile file" >&2
    exit 1
fi
rm -rf "$profile_out"

echo "==> reproduce --capture smoke (pcapng + index + inspect timeline)"
capture_out="$(mktemp -d)"
ARPSHIELD_RECORD_FRAMES=256 ./target/release/reproduce --capture t2 t3 \
    --out "$capture_out" >/dev/null
for id in t2 t3; do
    test -s "$capture_out/capture/$id.pcapng"
    test -s "$capture_out/capture/$id.index.json"
done
./target/release/reproduce inspect "$capture_out/capture/t2.pcapng" >/dev/null
# t3 runs defended cells: the timeline must surface verdicts with their
# pinned provenance frames.
./target/release/reproduce inspect "$capture_out/capture/t3.pcapng" \
    --verdict binding_changed >"$capture_out/t3.timeline"
grep -q "scheme.verdict" "$capture_out/t3.timeline"
rm -rf "$capture_out"

echo "==> reproduce t6s --defend smoke (scale sweep, thread/profile byte identity)"
t6s_out="$(mktemp -d)"
# Small host counts so the smoke stays fast; the published sweep runs
# the full 1k-100k grid. `--defend` additionally runs the VLAN fabric
# with in-fabric DAI (id t6sd). All CSVs — undefended and defended —
# must be byte-identical whether the sweep points fan out over one
# worker or four, and whether or not the wall-clock profiler is armed
# (its artifacts are quarantined under profile/ and stderr).
ARPSHIELD_T6S_HOSTS=300,900 ARPSHIELD_THREADS=1 \
    ./target/release/reproduce t6s --defend --out "$t6s_out/one" >/dev/null 2>&1
ARPSHIELD_T6S_HOSTS=300,900 ARPSHIELD_THREADS=4 \
    ./target/release/reproduce t6s --defend --out "$t6s_out/four" >/dev/null 2>&1
# The same sweep with the profiler armed, at both thread counts. The
# heartbeat interval is forced low so even this small smoke emits
# progress lines; the second run checks ARPSHIELD_QUIET silences them.
ARPSHIELD_T6S_HOSTS=300,900 ARPSHIELD_THREADS=1 ARPSHIELD_HEARTBEAT_SECS=0.001 \
    ./target/release/reproduce t6s --defend --profile --out "$t6s_out/one-prof" \
    >/dev/null 2>"$t6s_out/one-prof.stderr"
ARPSHIELD_T6S_HOSTS=300,900 ARPSHIELD_THREADS=4 ARPSHIELD_QUIET=1 \
    ./target/release/reproduce t6s --defend --profile --out "$t6s_out/four-prof" \
    >/dev/null 2>"$t6s_out/four-prof.stderr"
test -s "$t6s_out/one/t6s_0.csv"
test -s "$t6s_out/one/t6s_1.csv"
# Defended series: open/DAI throughput plus denial and work counters.
for i in 0 1 2 3; do
    test -s "$t6s_out/one/t6sd_$i.csv"
done
# DAI must actually deny the smoke's spoofed frames at every size.
awk -F',' 'NR > 1 && $2 + 0 <= 0 { exit 1 }' "$t6s_out/one/t6sd_2.csv"
# Byte identity across worker count and profiler arming; the profile/
# sidecars are wall-clock data and excluded from the comparison.
diff -r "$t6s_out/one" "$t6s_out/four"
diff -r -x profile "$t6s_out/one" "$t6s_out/one-prof"
diff -r -x profile "$t6s_out/one" "$t6s_out/four-prof"
# The forced-fast interval must produce heartbeat progress lines plus a
# done summary per sweep point, and quiet mode must silence both.
grep -q "heartbeat" "$t6s_out/one-prof.stderr"
grep -q "arpshield t6s hosts=900: done" "$t6s_out/one-prof.stderr"
test ! -s "$t6s_out/four-prof.stderr"
# Coverage gate: span self times must account for >=90% of each run's
# measured wall time (job-level root spans make sum(self) telescope to
# the work actually executed; with >1 worker it can exceed wall time).
python3 - "$t6s_out/one-prof/profile/t6s.json" \
    "$t6s_out/one-prof/profile/t6sd.json" \
    "$t6s_out/four-prof/profile/t6s.json" \
    "$t6s_out/four-prof/profile/t6sd.json" <<'PY'
import json
import sys

failed = False
for path in sys.argv[1:]:
    doc = json.load(open(path))
    if doc["schema"] != "arpshield-profile/1":
        print(f"profile coverage: FAIL {path}: unexpected schema {doc['schema']!r}")
        failed = True
        continue
    coverage = 100.0 * doc["self_total_ns"] / max(doc["wall_ns"], 1)
    verdict = "ok" if coverage >= 90.0 else "FAIL"
    failed |= coverage < 90.0
    print(f"profile coverage: {verdict} {path}: {coverage:.1f}% of wall accounted")
sys.exit(1 if failed else 0)
PY
rm -rf "$t6s_out"

echo "==> reproduce ingest smoke (capture re-ingest + verdict parity)"
ingest_out="$(mktemp -d)"
# Live t3 with a ring large enough that no frame is evicted: re-ingest
# parity needs the monitor's complete vantage on disk.
ARPSHIELD_RECORD_FRAMES=200000 ./target/release/reproduce t3 --trace --capture \
    --out "$ingest_out" >/dev/null
./target/release/reproduce ingest "$ingest_out/capture/t3.pcapng" \
    --scheme passive --vantage passive-monitor --out "$ingest_out" >/dev/null
test -s "$ingest_out/trace/ingest.json"
test -s "$ingest_out/trace/ingest.csv"
./target/release/reproduce validate-trace "$ingest_out/trace/ingest.json"
# The standalone detector must reproduce the live passive runs' verdict
# counters exactly from the recorded vantage.
live_verdicts="$(awk -F',' '/scheme=passive/ && /scheme\.verdict\./ {sum+=$NF} END {print sum+0}' \
    "$ingest_out/trace/t3.csv")"
ingest_verdicts="$(awk -F',' '/detector=passive/ && /scheme\.verdict\./ {sum+=$NF} END {print sum+0}' \
    "$ingest_out/trace/ingest.csv")"
test "$live_verdicts" -gt 0
test "$live_verdicts" = "$ingest_verdicts"
rm -rf "$ingest_out"

echo "==> TESTKIT_BENCH_SMOKE=1 cargo bench --workspace --offline"
TESTKIT_BENCH_SMOKE=1 cargo bench --workspace --offline

echo "==> alloc-floor gate (frame_delivery allocs/frame vs committed baseline)"
# Allocation counts are deterministic (seeded sim, warmed frame pool), so
# unlike the timing comparison above this gate is FATAL: the bench smoke
# just rewrote results/bench/frame_delivery_allocs.json from a live run,
# and any workload allocating more per delivered frame than the committed
# baseline — or the hub broadcast path exceeding its 0.02 allocs/frame
# ceiling — fails CI.
python3 - results/bench/frame_delivery_allocs.json \
    results/bench/baseline/frame_delivery_allocs.json <<'PY'
import json
import sys

live_path, base_path = sys.argv[1], sys.argv[2]
live = {e["id"]: e for e in json.load(open(live_path))["results"]}
base = {e["id"]: e for e in json.load(open(base_path))["results"]}

HUB_CEILING = 0.02  # absolute allocs/frame bound on the zero-copy TX path

failed = False
for wid, entry in sorted(base.items()):
    if wid not in live:
        print(f"alloc gate: FAIL {wid}: missing from live report")
        failed = True
        continue
    got, want = live[wid]["allocs_per_frame"], entry["allocs_per_frame"]
    verdict = "ok" if got <= want else "FAIL (regressed)"
    failed |= got > want
    print(f"alloc gate: {verdict} {wid}: {got:.4f} allocs/frame (baseline {want:.4f})")

hub = live.get("hub16/broadcast")
if hub is None or hub["allocs_per_frame"] > HUB_CEILING:
    print(f"alloc gate: FAIL hub16/broadcast exceeds {HUB_CEILING} allocs/frame ceiling")
    failed = True

sys.exit(1 if failed else 0)
PY

echo "==> scripts/bench_compare.sh (advisory; compare.json is asserted)"
scripts/bench_compare.sh
# The timing verdicts stay advisory, but the machine-readable report
# must exist and carry its schema tag.
test -s results/bench/compare.json
grep -q '"arpshield-bench-compare/1"' results/bench/compare.json

echo "==> ci.sh: all gates passed"
